package hier

// Block congruence is decided in two stages, split so the per-block
// cost on a million-node deck stays a few microseconds:
//
//  1. blockSig builds a cheap LAYOUT signature — element kinds, the
//     positional local-node numbering Adopt will reproduce, initial
//     state bits at every block row, and the tear topology. Blocks are
//     bucketed by the raw signature bytes (map key, no hashing, no
//     collisions).
//  2. congruentValues compares a candidate member against a donor
//     element by element: every resistance, capacitance, inductance,
//     model parameter set and source waveform must match bit-for-bit.
//
// The split exists because an adopted block assembles through the
// donor's element structs for the whole run (part.Skeleton.Adopt
// shares Ckt and Sys): value equality is a hard correctness
// requirement, so it is established by direct comparison rather than
// by trusting an encoding. The donor's pivot order is only
// bit-transferable when the member's first assembled matrix equals the
// donor's — which is exactly layout + values + initial state, the
// union of the two checks. netparse builds a fresh model instance per
// element line, so pointer identity never groups anything; content is
// what repeats across subcircuit instances.

import (
	"math"
	"reflect"

	"nanosim/internal/circuit"
	"nanosim/internal/part"
)

// sigWriter accumulates layout-signature bytes in a reusable buffer.
type sigWriter struct {
	b []byte
}

func (w *sigWriter) tag(t byte) { w.b = append(w.b, t) }

func (w *sigWriter) u64(v uint64) {
	w.b = append(w.b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (w *sigWriter) i(v int) { w.u64(uint64(int64(v))) }

// f64bits records a float's exact bits (distinguishing -0 from +0 and
// any NaN payloads — strictly conservative).
func (w *sigWriter) f64bits(v float64) { w.u64(floatBits(v)) }

// blockSig appends block b's layout signature to w (callers reset w.b
// between blocks and reuse the buffer). ok is false when the block
// contains an element kind the signature cannot describe; such a block
// never groups.
func blockSig(w *sigWriter, sk *part.Skeleton, b int, x0 []float64, local map[int]int) bool {
	elems := sk.Ckt.Elements()
	clear(local)
	branches := 0
	node := func(n circuit.NodeID) {
		if n == circuit.Ground {
			w.i(-1)
			return
		}
		g := int(n) - 1
		li, seen := local[g]
		if !seen {
			// First appearance: the row Adopt will assign, plus the
			// initial state bits the warm factorization starts from.
			li = len(local)
			local[g] = li
			w.f64bits(x0[g])
		}
		w.i(li)
	}

	for _, idx := range sk.Elems[b] {
		switch el := elems[idx].(type) {
		case *circuit.Resistor:
			w.tag('R')
			node(el.A)
			node(el.B)
		case *circuit.Capacitor:
			w.tag('C')
			node(el.A)
			node(el.B)
		case *circuit.Inductor:
			w.tag('L')
			node(el.A)
			node(el.B)
			branches++
		case *circuit.VSource:
			w.tag('V')
			node(el.Pos)
			node(el.Neg)
			branches++
		case *circuit.ISource:
			w.tag('I')
			node(el.Pos)
			node(el.Neg)
		case *circuit.TwoTerm:
			w.tag('D')
			node(el.A)
			node(el.B)
		case *circuit.FET:
			w.tag('F')
			node(el.D)
			node(el.G)
			node(el.S)
		default:
			return false
		}
	}

	// Tear topology: side, local endpoint row, kind, stiffness, and
	// both endpoint initial voltages (the inputs of the tear's first
	// Norton half — the far end is outside the block's row set).
	p := sk.Part
	for _, ti := range p.Blocks[b].Tears {
		t := p.Tears[ti]
		gRow := t.A
		if t.BlockB == b {
			w.tag('b')
			gRow = t.B
		} else {
			w.tag('a')
		}
		li, seen := local[gRow]
		if !seen {
			// An owned row no internal element touches — Finish would
			// reject the partition; refuse to group rather than guess.
			return false
		}
		w.i(li)
		switch {
		case t.R != nil:
			w.tag('r')
		case t.TT != nil:
			w.tag('d')
		default:
			return false
		}
		w.f64bits(x0[t.A])
		w.f64bits(x0[t.B])
		stiffTag := byte(0)
		if t.StiffA {
			stiffTag |= 1
		}
		if t.StiffB {
			stiffTag |= 2
		}
		w.tag(stiffTag)
	}

	w.i(len(local))
	w.i(branches)
	return true
}

// congruentValues reports whether block b's element and tear content
// equals donor's bit-for-bit. Both blocks already share a layout
// signature, so kinds, counts and connectivity shapes line up
// position by position; only the values remain to be checked.
func congruentValues(sk *part.Skeleton, b, donor int) bool {
	elems := sk.Ckt.Elements()
	eb, ed := sk.Elems[b], sk.Elems[donor]
	if len(eb) != len(ed) {
		return false
	}
	for k := range eb {
		switch a := elems[eb[k]].(type) {
		case *circuit.Resistor:
			o, ok := elems[ed[k]].(*circuit.Resistor)
			if !ok || floatBits(a.R) != floatBits(o.R) {
				return false
			}
		case *circuit.Capacitor:
			o, ok := elems[ed[k]].(*circuit.Capacitor)
			if !ok || floatBits(a.C) != floatBits(o.C) ||
				a.HasIC != o.HasIC || floatBits(a.IC) != floatBits(o.IC) {
				return false
			}
		case *circuit.Inductor:
			o, ok := elems[ed[k]].(*circuit.Inductor)
			if !ok || floatBits(a.L) != floatBits(o.L) {
				return false
			}
		case *circuit.VSource:
			o, ok := elems[ed[k]].(*circuit.VSource)
			if !ok || floatBits(a.NoiseSigma) != floatBits(o.NoiseSigma) ||
				floatBits(a.ACMag) != floatBits(o.ACMag) ||
				floatBits(a.ACPhase) != floatBits(o.ACPhase) ||
				!contentEqual(a.W, o.W) {
				return false
			}
		case *circuit.ISource:
			o, ok := elems[ed[k]].(*circuit.ISource)
			if !ok || floatBits(a.NoiseSigma) != floatBits(o.NoiseSigma) ||
				floatBits(a.ACMag) != floatBits(o.ACMag) ||
				floatBits(a.ACPhase) != floatBits(o.ACPhase) ||
				!contentEqual(a.W, o.W) {
				return false
			}
		case *circuit.TwoTerm:
			o, ok := elems[ed[k]].(*circuit.TwoTerm)
			if !ok || !contentEqual(a.Model, o.Model) {
				return false
			}
		case *circuit.FET:
			o, ok := elems[ed[k]].(*circuit.FET)
			if !ok || !contentEqual(a.Model, o.Model) {
				return false
			}
		default:
			return false
		}
	}

	tb, td := sk.Part.Blocks[b].Tears, sk.Part.Blocks[donor].Tears
	if len(tb) != len(td) {
		return false
	}
	for k := range tb {
		ta, to := sk.Part.Tears[tb[k]], sk.Part.Tears[td[k]]
		switch {
		case ta.R != nil && to.R != nil:
			if floatBits(ta.R.R) != floatBits(to.R.R) {
				return false
			}
		case ta.TT != nil && to.TT != nil:
			if !contentEqual(ta.TT.Model, to.TT.Model) {
				return false
			}
		default:
			return false
		}
		if !stiffSideEqual(ta.StiffA, ta.SrcA, ta.SignA, to.StiffA, to.SrcA, to.SignA) ||
			!stiffSideEqual(ta.StiffB, ta.SrcB, ta.SignB, to.StiffB, to.SrcB, to.SignB) {
			return false
		}
	}
	return true
}

// stiffSideEqual compares one tear side's stiff pin: a stiff side's
// voltage is the source waveform times its sign at every step.
func stiffSideEqual(sa bool, srcA *circuit.VSource, signA float64, sb bool, srcB *circuit.VSource, signB float64) bool {
	if sa != sb {
		return false
	}
	if !sa {
		return true
	}
	return floatBits(signA) == floatBits(signB) && contentEqual(srcA.W, srcB.W)
}

// contentEqual compares two model or waveform values by content. Equal
// dynamic type is required; comparable kinds (all the built-in device
// models and waveforms except slice-backed ones) compare by
// dereferenced struct value, the rest fall back to reflect.DeepEqual.
// NaN-bearing values never compare equal — conservative: the block is
// materialized flat instead of shared.
func contentEqual(x, y any) bool {
	if x == nil || y == nil {
		return x == nil && y == nil
	}
	// Identity fast path: netparse interns models per .model card, so
	// instances from the same card compare in one pointer check. (Only
	// taken for pointer-shaped values — comparing non-comparable
	// dynamic types with == would panic.)
	if reflect.TypeOf(x).Kind() == reflect.Pointer && x == y {
		return true
	}
	tx := reflect.TypeOf(x)
	if tx != reflect.TypeOf(y) {
		return false
	}
	if tx.Kind() == reflect.Pointer {
		ex := tx.Elem()
		if ex.Kind() == reflect.Struct && ex.Comparable() {
			return reflect.ValueOf(x).Elem().Interface() == reflect.ValueOf(y).Elem().Interface()
		}
		return reflect.DeepEqual(x, y)
	}
	if tx.Comparable() {
		return x == y
	}
	return reflect.DeepEqual(x, y)
}

// floatBits shortens math.Float64bits at the many call sites above.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
