// Package mat implements the dense linear algebra kernel used by the
// nanosim engines: row-major dense matrices, vectors, LU factorization
// with partial pivoting, triangular solves and a 1-norm condition
// estimate. Every kernel optionally reports its work to a flop.Counter so
// the Table I comparison between SWEC and the Newton-Raphson baselines is
// made on identical accounting.
package mat

import (
	"fmt"
	"math"
	"strings"

	"nanosim/internal/flop"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r-by-c matrix. It panics if r or c is not
// positive, because a dimensioned-but-empty matrix is always a programming
// error in the engines.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds a matrix from a slice of rows; all rows must have
// equal length.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: NewDenseFrom of empty data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add accumulates v into element (i, j); this is the MNA stamping
// primitive.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Zero clears all elements in place.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with src; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled accumulates s*o into m in place; dimensions must match.
func (m *Dense) AddScaled(s float64, o *Dense) {
	if m.rows != o.rows || m.cols != o.cols {
		panic("mat: AddScaled dimension mismatch")
	}
	for i := range m.data {
		m.data[i] += s * o.data[i]
	}
}

// MulVec computes y = m*x. y must have length Rows and x length Cols.
// Work is charged to fc when non-nil.
func (m *Dense) MulVec(x, y []float64, fc *flop.Counter) {
	if len(x) != m.cols || len(y) != m.rows {
		panic("mat: MulVec dimension mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	fc.Mul(m.rows * m.cols)
	fc.Add(m.rows * m.cols)
}

// Mul computes and returns m*o.
func (m *Dense) Mul(o *Dense, fc *flop.Counter) *Dense {
	if m.cols != o.rows {
		panic("mat: Mul dimension mismatch")
	}
	r := NewDense(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			orow := o.data[k*o.cols : (k+1)*o.cols]
			rrow := r.data[i*o.cols : (i+1)*o.cols]
			for j, v := range orow {
				rrow[j] += a * v
			}
		}
	}
	fc.Mul(m.rows * m.cols * o.cols)
	fc.Add(m.rows * m.cols * o.cols)
	return r
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Norm1 returns the 1-norm (maximum absolute column sum).
func (m *Dense) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.cols; j++ {
		s := 0.0
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the infinity norm (maximum absolute row sum).
func (m *Dense) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
