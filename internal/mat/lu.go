package mat

import (
	"errors"
	"math"

	"nanosim/internal/flop"
)

// ErrSingular is returned when factorization meets a pivot below the
// singularity threshold. Circuit engines translate it into a diagnosable
// topology or model error (floating node, zero-conductance loop, ...).
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an in-place LU factorization with partial (row) pivoting:
// P*A = L*U with unit lower-triangular L.
type LU struct {
	lu    *Dense
	pivot []int
	signD float64 // sign of determinant permutation factor
}

// pivotTol is the relative threshold under which a pivot is declared
// numerically singular.
const pivotTol = 1e-300

// Factor computes the LU factorization of a (which is not modified).
// Work is charged to fc.
func Factor(a *Dense, fc *flop.Counter) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: Factor of non-square matrix")
	}
	n := a.rows
	f := &LU{lu: a.Clone(), pivot: make([]int, n), signD: 1}
	return f, f.refactor(fc)
}

// FactorInPlace factors a destructively, avoiding the clone. The caller
// must not use a afterwards except through the returned LU.
func FactorInPlace(a *Dense, fc *flop.Counter) (*LU, error) {
	if a.rows != a.cols {
		return nil, errors.New("mat: Factor of non-square matrix")
	}
	n := a.rows
	f := &LU{lu: a, pivot: make([]int, n), signD: 1}
	return f, f.refactor(fc)
}

// Refactor re-runs the factorization on a new matrix of the same
// dimension, destructively and reusing the LU's pivot storage — the
// dense counterpart of the sparse numeric refactorization, so per-step
// dense solves allocate nothing in steady state. The caller must not use
// a afterwards except through f.
func (f *LU) Refactor(a *Dense, fc *flop.Counter) error {
	if a.rows != a.cols || a.rows != len(f.pivot) {
		return errors.New("mat: Refactor dimension mismatch")
	}
	f.lu = a
	f.signD = 1
	return f.refactor(fc)
}

func (f *LU) refactor(fc *flop.Counter) error {
	n := f.lu.rows
	d := f.lu.data
	scale := f.lu.NormInf()
	if scale == 0 {
		return ErrSingular
	}
	muls, adds, divs := 0, 0, 0
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest |d[i][k]| for i >= k.
		p, maxv := k, math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(d[i*n+k]); a > maxv {
				p, maxv = i, a
			}
		}
		f.pivot[k] = p
		if maxv <= pivotTol*scale || maxv == 0 {
			fc.Mul(muls)
			fc.Add(adds)
			fc.Div(divs)
			return ErrSingular
		}
		if p != k {
			rk := d[k*n : k*n+n]
			rp := d[p*n : p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.signD = -f.signD
		}
		pivotVal := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivotVal
			divs++
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := d[i*n : i*n+n]
			rk := d[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
			muls += n - k - 1
			adds += n - k - 1
		}
	}
	fc.Mul(muls)
	fc.Add(adds)
	fc.Div(divs)
	return nil
}

// Solve solves A*x = b into x (which may alias b). Work is charged to fc.
func (f *LU) Solve(b, x []float64, fc *flop.Counter) {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		panic("mat: Solve dimension mismatch")
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	d := f.lu.data
	// Apply row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		s := x[i]
		row := d[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := d[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	fc.Mul(n * n)
	fc.Add(n * n)
	fc.Div(n)
	fc.Solve()
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.signD
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// SolveLinear factors a and solves a*x = b in one call, returning a fresh
// solution vector. It is the convenience path for one-shot solves; engines
// with a fixed sparsity pattern keep the LU around instead.
func SolveLinear(a *Dense, b []float64, fc *flop.Counter) ([]float64, error) {
	f, err := Factor(a, fc)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(b, x, fc)
	return x, nil
}

// CondEst1 returns a lower-bound estimate of the 1-norm condition number
// of a, using the classic Hager/Higham power iteration on A^-T and A^-1.
// It is used by engines to warn about near-singular MNA systems.
func CondEst1(a *Dense, fc *flop.Counter) (float64, error) {
	n := a.rows
	f, err := Factor(a, fc)
	if err != nil {
		return math.Inf(1), err
	}
	norm := a.Norm1()
	// Hager's estimator for ||A^-1||_1.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	y := make([]float64, n)
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		f.Solve(x, y, fc)
		est = 0
		for _, v := range y {
			est += math.Abs(v)
		}
		// xi = sign(y)
		for i, v := range y {
			if v >= 0 {
				x[i] = 1
			} else {
				x[i] = -1
			}
		}
		// z = A^-T xi: solve transposed via factoring A^T (cheap for the
		// small systems this estimator serves).
		at := transpose(a)
		ft, err := Factor(at, fc)
		if err != nil {
			break
		}
		z := make([]float64, n)
		ft.Solve(x, z, fc)
		// Next x is e_j for the largest |z_j|.
		jmax, zmax := 0, math.Abs(z[0])
		for j := 1; j < n; j++ {
			if a := math.Abs(z[j]); a > zmax {
				jmax, zmax = j, a
			}
		}
		prev := x
		x = make([]float64, n)
		x[jmax] = 1
		if zmax <= Dot(z, prev, fc) {
			break
		}
	}
	return est * norm, nil
}

func transpose(a *Dense) *Dense {
	t := NewDense(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			t.data[j*t.cols+i] = a.data[i*a.cols+j]
		}
	}
	return t
}
