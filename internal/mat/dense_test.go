package mat

import (
	"math"
	"strings"
	"testing"

	"nanosim/internal/flop"
)

func TestNewDenseAndAccess(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %g, want 5", m.At(1, 2))
	}
	m.Add(1, 2, 3)
	if m.At(1, 2) != 8 {
		t.Errorf("Add failed: got %g, want 8", m.At(1, 2))
	}
}

func TestNewDensePanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("NewDenseFrom layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged NewDenseFrom did not panic")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I(%d,%d) = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestZeroScaleAddScaled(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	o := NewDenseFrom([][]float64{{10, 20}, {30, 40}})
	m.AddScaled(0.5, o)
	if m.At(0, 0) != 6 || m.At(1, 1) != 24 {
		t.Errorf("AddScaled wrong: %v", m)
	}
	m.Scale(2)
	if m.At(0, 1) != 24 {
		t.Errorf("Scale wrong: %v", m)
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Error("Zero did not clear")
	}
}

func TestMulVec(t *testing.T) {
	var fc flop.Counter
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1}, y, &fc)
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	if fc.Total() == 0 {
		t.Error("MulVec did not charge flops")
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b, nil)
	want := NewDenseFrom([][]float64{{2, 1}, {4, 3}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestNorms(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, -2}, {-3, 4}})
	if m.Norm1() != 6 {
		t.Errorf("Norm1 = %g, want 6", m.Norm1())
	}
	if m.NormInf() != 7 {
		t.Errorf("NormInf = %g, want 7", m.NormInf())
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g, want 4", m.MaxAbs())
	}
}

func TestString(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}})
	if !strings.Contains(m.String(), "1") || !strings.Contains(m.String(), "2") {
		t.Errorf("String = %q", m.String())
	}
}

func TestVecHelpers(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}, nil); d != 32 {
		t.Errorf("Dot = %g, want 32", d)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{10, 20}, y, nil)
	if y[0] != 21 || y[1] != 41 {
		t.Errorf("Axpy = %v", y)
	}
	dst := make([]float64, 2)
	Sub(dst, []float64{5, 7}, []float64{2, 3}, nil)
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("Sub = %v", dst)
	}
	if NormInfVec([]float64{-5, 3}) != 5 {
		t.Error("NormInfVec wrong")
	}
	if n := Norm2([]float64{3, 4}, nil); math.Abs(n-5) > 1e-15 {
		t.Errorf("Norm2 = %g, want 5", n)
	}
}

func TestMaxRelDiff(t *testing.T) {
	a := []float64{1.0, 2.0}
	b := []float64{1.0, 2.0}
	if MaxRelDiff(a, b, 1e-12, 1e-6) != 0 {
		t.Error("identical vectors should have zero diff")
	}
	b[1] = 2.2
	r := MaxRelDiff(a, b, 0, 0.1)
	if math.Abs(r-0.2/0.22) > 1e-12 {
		t.Errorf("MaxRelDiff = %g", r)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Error("finite vector misreported")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("Inf not detected")
	}
}
