package mat

import (
	"math"
	"math/rand"
	"testing"

	"nanosim/internal/flop"
)

// TestLUFlopFormula: dense LU factorization costs ~(2/3)n³ flops and a
// solve ~2n²+n — the accounting Table I relies on must match the
// textbook formulas, not just be nonzero.
func TestLUFlopFormula(t *testing.T) {
	for _, n := range []int{16, 48, 96} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(2*n))
		}
		var fc flop.Counter
		f, err := Factor(a, &fc)
		if err != nil {
			t.Fatal(err)
		}
		factorFlops := float64(fc.Total())
		want := 2.0 / 3.0 * float64(n*n*n)
		if math.Abs(factorFlops-want)/want > 0.15 {
			t.Errorf("n=%d: factor flops %g, want ~%g", n, factorFlops, want)
		}
		before := fc.Total()
		x := make([]float64, n)
		b := make([]float64, n)
		b[0] = 1
		f.Solve(b, x, &fc)
		solveFlops := float64(fc.Total() - before)
		wantSolve := float64(2*n*n + n)
		if math.Abs(solveFlops-wantSolve)/wantSolve > 0.05 {
			t.Errorf("n=%d: solve flops %g, want ~%g", n, solveFlops, wantSolve)
		}
	}
}
