package mat

import (
	"math"

	"nanosim/internal/flop"
)

// Vector helpers shared by the engines. Vectors are plain []float64 so
// the hot loops stay allocation-free; these functions centralize the
// common reductions and their FLOP accounting.

// Dot returns the inner product of a and b.
func Dot(a, b []float64, fc *flop.Counter) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	fc.Mul(len(a))
	fc.Add(len(a))
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64, fc *flop.Counter) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
	fc.Mul(len(x))
	fc.Add(len(x))
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b []float64, fc *flop.Counter) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	fc.Add(len(a))
}

// NormInfVec returns the infinity norm of v.
func NormInfVec(v []float64) float64 {
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64, fc *flop.Counter) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	fc.Mul(len(v))
	fc.Add(len(v))
	fc.Func(1)
	return math.Sqrt(s)
}

// MaxRelDiff returns max_i |a_i-b_i| / (atol + rtol*max(|a_i|,|b_i|)),
// the weighted update norm used by the Newton and SWEC convergence and
// local-error tests. A result <= 1 means converged to tolerance.
func MaxRelDiff(a, b []float64, atol, rtol float64) float64 {
	if len(a) != len(b) {
		panic("mat: MaxRelDiff length mismatch")
	}
	worst := 0.0
	for i := range a {
		den := atol + rtol*math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if den == 0 {
			continue
		}
		if r := math.Abs(a[i]-b[i]) / den; r > worst {
			worst = r
		}
	}
	return worst
}

// AllFinite reports whether every element of v is finite; engines use it
// to detect numerical blow-up early.
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
