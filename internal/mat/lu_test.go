package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nanosim/internal/flop"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveInPlaceAlias(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 1}, {1, 3}})
	f, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2}
	f.Solve(b, b, nil) // aliased solve
	// Check residual against the original matrix.
	r0 := 4*b[0] + 1*b[1] - 1
	r1 := 1*b[0] + 3*b[1] - 2
	if math.Abs(r0) > 1e-12 || math.Abs(r1) > 1e-12 {
		t.Errorf("aliased solve residual = %g, %g", r0, r1)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a, nil); err == nil {
		t.Error("singular matrix not detected")
	}
	z := NewDense(3, 3)
	if _, err := Factor(z, nil); err == nil {
		t.Error("zero matrix not detected as singular")
	}
}

func TestFactorNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := Factor(a, nil); err == nil {
		t.Error("non-square Factor should error")
	}
}

func TestDet(t *testing.T) {
	a := NewDenseFrom([][]float64{{3, 8}, {4, 6}})
	f, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Errorf("Det = %g, want -14", d)
	}
	// Permutation sign: swapping rows flips determinant sign.
	b := NewDenseFrom([][]float64{{0, 1}, {1, 0}})
	fb, err := Factor(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := fb.Det(); math.Abs(d-(-1)) > 1e-12 {
		t.Errorf("Det of permutation = %g, want -1", d)
	}
}

func TestFactorInPlace(t *testing.T) {
	a := NewDenseFrom([][]float64{{4, 3}, {6, 3}})
	orig := a.Clone()
	f, err := FactorInPlace(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{10, 12}, x, nil)
	// residual vs original
	r0 := orig.At(0, 0)*x[0] + orig.At(0, 1)*x[1] - 10
	r1 := orig.At(1, 0)*x[0] + orig.At(1, 1)*x[1] - 12
	if math.Abs(r0) > 1e-12 || math.Abs(r1) > 1e-12 {
		t.Errorf("in-place factor residual %g %g", r0, r1)
	}
}

// TestSolveResidualProperty: random diagonally-dominant systems must solve
// to tiny residuals. Diagonal dominance keeps condition numbers tame so
// the tolerance can be strict.
func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.NormFloat64()
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+r.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b, nil)
		if err != nil {
			return false
		}
		res := make([]float64, n)
		a.MulVec(x, res, nil)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCondEst(t *testing.T) {
	// Well conditioned identity: cond == 1.
	c, err := CondEst1(Identity(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-9 {
		t.Errorf("cond(I) = %g, want 1", c)
	}
	// Badly scaled diagonal: cond = ratio of extremes.
	a := Identity(3)
	a.Set(0, 0, 1e-8)
	c, err = CondEst1(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1e7 {
		t.Errorf("cond estimate %g too low for 1e8-conditioned matrix", c)
	}
}

func TestSolveChargesFlops(t *testing.T) {
	var fc flop.Counter
	a := NewDenseFrom([][]float64{{4, 1}, {1, 3}})
	if _, err := SolveLinear(a, []float64{1, 2}, &fc); err != nil {
		t.Fatal(err)
	}
	s := fc.Snapshot()
	if s.Total() == 0 || s.Solves != 1 {
		t.Errorf("flops not charged: %+v", s)
	}
}

func BenchmarkLUFactor(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(1))
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n))
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 8:
		return "n8"
	case 32:
		return "n32"
	default:
		return "n128"
	}
}
