package wave

import (
	"fmt"
	"math"
)

// Measurement utilities beyond the Series basics: propagation delay,
// overshoot and period extraction, the numbers a datasheet (or the
// paper's timing discussion) quotes.

// Delay returns the time from the reference series crossing refLevel to
// the target series crossing tgtLevel, both in the given direction
// (+1 rising, -1 falling, 0 either), measured at the first such pair
// with the target crossing after the reference crossing.
func Delay(ref, tgt *Series, refLevel, tgtLevel float64, refDir, tgtDir int) (float64, error) {
	rc := ref.Crossings(refLevel, refDir)
	if len(rc) == 0 {
		return 0, fmt.Errorf("wave: %q never crosses %g", ref.Name, refLevel)
	}
	tc := tgt.Crossings(tgtLevel, tgtDir)
	for _, t := range tc {
		if t >= rc[0] {
			return t - rc[0], nil
		}
	}
	return 0, fmt.Errorf("wave: %q never crosses %g after %q does", tgt.Name, tgtLevel, ref.Name)
}

// Overshoot returns the fraction by which the series exceeds its settled
// final value at its peak, e.g. 0.1 for 10% overshoot. Series that never
// exceed the final value report 0.
func (s *Series) Overshoot() float64 {
	if s.Len() < 2 {
		return 0
	}
	final := s.SettleValue(0.1)
	_, _, _, vMax := s.MinMax()
	if final == 0 {
		if vMax > 0 {
			return math.Inf(1)
		}
		return 0
	}
	over := (vMax - final) / math.Abs(final)
	if over < 0 {
		return 0
	}
	return over
}

// Period estimates the oscillation period from successive rising
// crossings of the given level, averaging all available cycles.
func (s *Series) Period(level float64) (float64, error) {
	cross := s.Crossings(level, +1)
	if len(cross) < 2 {
		return 0, fmt.Errorf("wave: %q has %d rising crossings of %g, need >= 2", s.Name, len(cross), level)
	}
	return (cross[len(cross)-1] - cross[0]) / float64(len(cross)-1), nil
}

// RMS returns the root-mean-square value of the series over its domain,
// computed with trapezoidal weighting on the (possibly non-uniform)
// sample grid.
func (s *Series) RMS() float64 {
	n := s.Len()
	if n < 2 {
		if n == 1 {
			return math.Abs(s.V[0])
		}
		return 0
	}
	sum := 0.0
	for i := 1; i < n; i++ {
		dt := s.T[i] - s.T[i-1]
		sum += 0.5 * dt * (s.V[i]*s.V[i] + s.V[i-1]*s.V[i-1])
	}
	return math.Sqrt(sum / (s.T[n-1] - s.T[0]))
}

// Mean returns the time-weighted average of the series.
func (s *Series) Mean() float64 {
	n := s.Len()
	if n < 2 {
		if n == 1 {
			return s.V[0]
		}
		return 0
	}
	sum := 0.0
	for i := 1; i < n; i++ {
		dt := s.T[i] - s.T[i-1]
		sum += 0.5 * dt * (s.V[i] + s.V[i-1])
	}
	return sum / (s.T[n-1] - s.T[0])
}
