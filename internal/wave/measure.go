package wave

import (
	"fmt"
	"math"
)

// Measurement utilities beyond the Series basics: propagation delay,
// overshoot and period extraction, the numbers a datasheet (or the
// paper's timing discussion) quotes.

// Delay returns the time from the reference series' first crossing of
// refLevel to the target series crossing tgtLevel, both in the given
// direction (+1 rising, -1 falling, 0 either). It is DelayEdge for edge
// index 0; multi-edge stimuli measure later edges through DelayEdge.
func Delay(ref, tgt *Series, refLevel, tgtLevel float64, refDir, tgtDir int) (float64, error) {
	return DelayEdge(ref, tgt, refLevel, tgtLevel, refDir, tgtDir, 0)
}

// DelayEdge measures the propagation delay of reference edge `edge`
// (0-indexed among the reference crossings in the given direction): the
// time from that reference crossing to the first later target crossing.
//
// Each reference crossing is paired with the first target crossing at
// or after it — never with the response to an earlier edge, and never
// (the old Delay bug) with responses measured only against the first
// reference edge, which reported the wrong edge's delay on multi-pulse
// stimuli. When the chosen reference edge produces no target response
// before the next same-direction reference edge, the pairing is
// ambiguous and an error is returned rather than a misattributed delay.
func DelayEdge(ref, tgt *Series, refLevel, tgtLevel float64, refDir, tgtDir, edge int) (float64, error) {
	rc := ref.Crossings(refLevel, refDir)
	if len(rc) == 0 {
		return 0, fmt.Errorf("wave: %q never crosses %g", ref.Name, refLevel)
	}
	if edge < 0 || edge >= len(rc) {
		return 0, fmt.Errorf("wave: %q has %d crossings of %g, no edge %d", ref.Name, len(rc), refLevel, edge)
	}
	t0 := rc[edge]
	for _, t := range tgt.Crossings(tgtLevel, tgtDir) {
		if t < t0 {
			continue
		}
		if edge+1 < len(rc) && t >= rc[edge+1] {
			return 0, fmt.Errorf("wave: %q responds to reference edge %d of %q only after edge %d fired",
				tgt.Name, edge, ref.Name, edge+1)
		}
		return t - t0, nil
	}
	return 0, fmt.Errorf("wave: %q never crosses %g after %q edge %d", tgt.Name, tgtLevel, ref.Name, edge)
}

// Finite is the export guard for measurement results: it passes finite
// values through and substitutes fallback for NaN/±Inf, so measures
// with degenerate cases (Overshoot returns +Inf when the settled value
// is zero) never reach a JSON or CSV emitter un-sanitized —
// encoding/json rejects non-finite floats outright.
func Finite(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

// Overshoot returns the fraction by which the series exceeds its settled
// final value at its peak, e.g. 0.1 for 10% overshoot. Series that never
// exceed the final value report 0.
func (s *Series) Overshoot() float64 {
	if s.Len() < 2 {
		return 0
	}
	final := s.SettleValue(0.1)
	_, _, _, vMax := s.MinMax()
	if final == 0 {
		if vMax > 0 {
			return math.Inf(1)
		}
		return 0
	}
	over := (vMax - final) / math.Abs(final)
	if over < 0 {
		return 0
	}
	return over
}

// Period estimates the oscillation period from successive rising
// crossings of the given level, averaging all available cycles.
func (s *Series) Period(level float64) (float64, error) {
	cross := s.Crossings(level, +1)
	if len(cross) < 2 {
		return 0, fmt.Errorf("wave: %q has %d rising crossings of %g, need >= 2", s.Name, len(cross), level)
	}
	return (cross[len(cross)-1] - cross[0]) / float64(len(cross)-1), nil
}

// RMS returns the root-mean-square value of the series over its domain,
// computed with trapezoidal weighting on the (possibly non-uniform)
// sample grid.
func (s *Series) RMS() float64 {
	n := s.Len()
	if n < 2 {
		if n == 1 {
			return math.Abs(s.V[0])
		}
		return 0
	}
	sum := 0.0
	for i := 1; i < n; i++ {
		dt := s.T[i] - s.T[i-1]
		sum += 0.5 * dt * (s.V[i]*s.V[i] + s.V[i-1]*s.V[i-1])
	}
	return math.Sqrt(sum / (s.T[n-1] - s.T[0]))
}

// Mean returns the time-weighted average of the series.
func (s *Series) Mean() float64 {
	n := s.Len()
	if n < 2 {
		if n == 1 {
			return s.V[0]
		}
		return 0
	}
	sum := 0.0
	for i := 1; i < n; i++ {
		dt := s.T[i] - s.T[i-1]
		sum += 0.5 * dt * (s.V[i] + s.V[i-1])
	}
	return sum / (s.T[n-1] - s.T[0])
}
