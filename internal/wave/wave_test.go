package wave

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ramp(name string, n int, f func(t float64) float64) *Series {
	s := NewSeries(name, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		s.MustAppend(t, f(t))
	}
	return s
}

func TestAppendMonotonic(t *testing.T) {
	s := NewSeries("v", 4)
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 3); err == nil {
		t.Error("equal time should be rejected")
	}
	if err := s.Append(0.5, 3); err == nil {
		t.Error("decreasing time should be rejected")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestMustAppendPanics(t *testing.T) {
	s := NewSeries("v", 2)
	s.MustAppend(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("MustAppend on bad time did not panic")
		}
	}()
	s.MustAppend(0, 0)
}

func TestAtInterpolation(t *testing.T) {
	s := NewSeries("v", 3)
	s.MustAppend(0, 0)
	s.MustAppend(1, 10)
	s.MustAppend(3, 30)
	cases := map[float64]float64{
		-1:  0,  // clamp left
		0:   0,  // exact
		0.5: 5,  // interp
		1:   10, // exact
		2:   20, // interp
		5:   30, // clamp right
	}
	for in, want := range cases {
		if got := s.At(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", in, got, want)
		}
	}
	empty := NewSeries("e", 0)
	if empty.At(1) != 0 {
		t.Error("empty At should be 0")
	}
}

func TestResample(t *testing.T) {
	s := ramp("r", 11, func(t float64) float64 { return 2 * t })
	r, err := s.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 5 || r.T[0] != 0 || r.T[4] != 1 {
		t.Fatalf("resample shape wrong: %+v", r)
	}
	for i, tv := range r.T {
		if math.Abs(r.V[i]-2*tv) > 1e-12 {
			t.Errorf("V[%d] = %g, want %g", i, r.V[i], 2*tv)
		}
	}
	if _, err := NewSeries("x", 0).Resample(5); err == nil {
		t.Error("resampling empty should error")
	}
	if _, err := s.Resample(1); err == nil {
		t.Error("resample n=1 should error")
	}
}

func TestMinMaxFinal(t *testing.T) {
	s := NewSeries("v", 4)
	s.MustAppend(0, 5)
	s.MustAppend(1, -3)
	s.MustAppend(2, 8)
	s.MustAppend(3, 1)
	tMin, vMin, tMax, vMax := s.MinMax()
	if vMin != -3 || tMin != 1 || vMax != 8 || tMax != 2 {
		t.Errorf("MinMax = (%g,%g,%g,%g)", tMin, vMin, tMax, vMax)
	}
	if s.Final() != 1 {
		t.Errorf("Final = %g", s.Final())
	}
}

func TestCrossings(t *testing.T) {
	// Triangle wave 0 -> 10 -> 0 over [0, 2].
	s := NewSeries("v", 3)
	s.MustAppend(0, 0)
	s.MustAppend(1, 10)
	s.MustAppend(2, 0)
	rising := s.Crossings(5, +1)
	falling := s.Crossings(5, -1)
	both := s.Crossings(5, 0)
	if len(rising) != 1 || math.Abs(rising[0]-0.5) > 1e-12 {
		t.Errorf("rising = %v", rising)
	}
	if len(falling) != 1 || math.Abs(falling[0]-1.5) > 1e-12 {
		t.Errorf("falling = %v", falling)
	}
	if len(both) != 2 {
		t.Errorf("both = %v", both)
	}
}

func TestRiseTime(t *testing.T) {
	// Linear ramp 0->1 over [0,1]: 10%-90% takes 0.8.
	s := ramp("r", 101, func(t float64) float64 { return t })
	rt, err := s.RiseTime(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt-0.8) > 1e-9 {
		t.Errorf("RiseTime = %g, want 0.8", rt)
	}
	flat := ramp("f", 10, func(t float64) float64 { return 0 })
	if _, err := flat.RiseTime(0, 1); err == nil {
		t.Error("flat series should have no rise time")
	}
}

func TestSettleValue(t *testing.T) {
	s := NewSeries("v", 10)
	for i := 0; i < 10; i++ {
		v := 0.0
		if i >= 5 {
			v = 4
		}
		s.MustAppend(float64(i), v)
	}
	if got := s.SettleValue(0.3); got != 4 {
		t.Errorf("SettleValue = %g, want 4", got)
	}
	if NewSeries("e", 0).SettleValue(0.5) != 0 {
		t.Error("empty settle should be 0")
	}
}

func TestCompareOn(t *testing.T) {
	a := ramp("a", 50, func(t float64) float64 { return t })
	b := ramp("b", 20, func(t float64) float64 { return t * t })
	va, vb, err := CompareOn(a, b, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range va {
		tt := float64(i) / 10
		if math.Abs(va[i]-tt) > 0.01 || math.Abs(vb[i]-tt*tt) > 0.01 {
			t.Errorf("CompareOn[%d] = %g/%g", i, va[i], vb[i])
		}
	}
	short := NewSeries("s", 0)
	if _, _, err := CompareOn(a, short, 5); err == nil {
		t.Error("short input should error")
	}
}

func TestSet(t *testing.T) {
	st := NewSet()
	if err := st.Add(ramp("x", 5, func(t float64) float64 { return t })); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(ramp("x", 5, func(t float64) float64 { return t })); err == nil {
		t.Error("duplicate name should error")
	}
	if st.Get("x") == nil || st.Get("y") != nil {
		t.Error("Get wrong")
	}
	if st.Len() != 1 || st.Names()[0] != "x" {
		t.Error("set bookkeeping wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	st := NewSet()
	st.Add(ramp("a", 3, func(t float64) float64 { return t }))
	st.Add(ramp("b", 3, func(t float64) float64 { return 1 - t }))
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "t,a,b\n") {
		t.Errorf("header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 3 rows
		t.Errorf("CSV lines = %d, want 4\n%s", lines, out)
	}
	if err := NewSet().WriteCSV(&buf); err == nil {
		t.Error("empty set CSV should error")
	}
}

func TestPlot(t *testing.T) {
	st := NewSet()
	st.Add(ramp("sin", 100, func(t float64) float64 { return math.Sin(2 * math.Pi * t) }))
	var buf bytes.Buffer
	if err := st.Plot(&buf, 60, 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "sin") {
		t.Errorf("plot missing content:\n%s", out)
	}
	if err := st.Plot(&buf, 60, 12, "missing"); err == nil {
		t.Error("unknown series should error")
	}
	if err := NewSet().Plot(&buf, 60, 12); err == nil {
		t.Error("empty plot should error")
	}
}

// Property: At() restricted to sample points returns the sample values.
func TestAtExactSamples(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50) + 2
		if n < 2 {
			n = 2
		}
		s := NewSeries("p", n)
		for i := 0; i < n; i++ {
			s.MustAppend(float64(i), math.Sin(float64(i)*0.7))
		}
		for i := 0; i < n; i++ {
			if s.At(float64(i)) != s.V[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
