package wave

import "sort"

// sortSlice sorts floats ascending; split out so render.go stays focused
// on formatting.
func sortSlice(x []float64) { sort.Float64s(x) }
