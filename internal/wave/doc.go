// Package wave represents simulation outputs as named time series and
// provides the interpolation, measurement, export and terminal-plotting
// utilities every nanosim experiment reports through. A Series is a
// (t, v) sample sequence with strictly increasing time; a Set bundles the
// signals of one simulation run.
package wave
