package wave

import (
	"encoding/json"
	"math"
	"testing"
)

func sine(name string, f float64, n int, tEnd float64) *Series {
	s := NewSeries(name, n)
	for i := 0; i < n; i++ {
		t := tEnd * float64(i) / float64(n-1)
		s.MustAppend(t, math.Sin(2*math.Pi*f*t))
	}
	return s
}

func TestDelay(t *testing.T) {
	// Target is the reference shifted by 0.2.
	ref := NewSeries("ref", 0)
	tgt := NewSeries("tgt", 0)
	for i := 0; i <= 100; i++ {
		tt := float64(i) / 100
		ref.MustAppend(tt, step(tt, 0.3))
		tgt.MustAppend(tt, step(tt, 0.5))
	}
	d, err := Delay(ref, tgt, 0.5, 0.5, +1, +1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.2) > 0.02 {
		t.Errorf("Delay = %g, want 0.2", d)
	}
	// Missing crossings error cleanly.
	flat := NewSeries("flat", 0)
	flat.MustAppend(0, 0)
	flat.MustAppend(1, 0)
	if _, err := Delay(flat, tgt, 0.5, 0.5, +1, +1); err == nil {
		t.Error("flat reference accepted")
	}
	if _, err := Delay(ref, flat, 0.5, 0.5, +1, +1); err == nil {
		t.Error("flat target accepted")
	}
}

func step(t, at float64) float64 {
	if t < at {
		return 0
	}
	return 1
}

// pulses builds a series of unit pulses rising at the given times (each
// 0.05 wide, 0.002 edge resolution) over [0, 1].
func pulses(name string, rises ...float64) *Series {
	s := NewSeries(name, 0)
	for i := 0; i <= 500; i++ {
		tt := float64(i) / 500
		v := 0.0
		for _, r := range rises {
			if tt >= r && tt < r+0.05 {
				v = 1
			}
		}
		s.MustAppend(tt, v)
	}
	return s
}

// TestDelayEdgePairing is the regression for the multi-edge Delay bug:
// the old code paired every target crossing against the *first*
// reference crossing, so asking about a later stimulus edge silently
// measured the wrong one.
func TestDelayEdgePairing(t *testing.T) {
	// Two stimulus pulses; the response follows each by 0.02.
	ref := pulses("ref", 0.1, 0.5)
	tgt := pulses("tgt", 0.12, 0.52)
	for edge, want := range []float64{0.02, 0.02} {
		d, err := DelayEdge(ref, tgt, 0.5, 0.5, +1, +1, edge)
		if err != nil {
			t.Fatalf("edge %d: %v", edge, err)
		}
		if math.Abs(d-want) > 0.005 {
			t.Errorf("edge %d delay = %g, want %g", edge, d, want)
		}
	}
	// The old pairing bug, made visible: the target only responds to
	// the SECOND pulse (first one too narrow to propagate). Pairing the
	// lone response against reference edge 0 would report 0.42; edge 1
	// must report the true 0.02 and edge 0 must refuse.
	lazy := pulses("lazy", 0.52)
	if _, err := DelayEdge(ref, lazy, 0.5, 0.5, +1, +1, 0); err == nil {
		t.Error("edge 0 with no response before edge 1 should error, not misattribute")
	}
	d, err := DelayEdge(ref, lazy, 0.5, 0.5, +1, +1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.02) > 0.005 {
		t.Errorf("edge 1 delay = %g, want 0.02", d)
	}
	// Out-of-range edge index errors cleanly.
	if _, err := DelayEdge(ref, tgt, 0.5, 0.5, +1, +1, 7); err == nil {
		t.Error("edge 7 of a 2-edge reference accepted")
	}
}

func TestOvershoot(t *testing.T) {
	// Damped response peaking at 1.3 then settling at 1.0.
	s := NewSeries("o", 0)
	for i := 0; i <= 200; i++ {
		tt := float64(i) / 20
		s.MustAppend(tt, 1+0.3*math.Exp(-tt)*math.Cos(3*tt))
	}
	over := s.Overshoot()
	if over < 0.15 || over > 0.35 {
		t.Errorf("Overshoot = %g, want ~0.3", over)
	}
	// Monotone series: no overshoot.
	m := NewSeries("m", 0)
	for i := 0; i <= 50; i++ {
		tt := float64(i) / 50
		m.MustAppend(tt, tt)
	}
	if m.Overshoot() > 0.05 {
		t.Errorf("monotone overshoot = %g", m.Overshoot())
	}
	if NewSeries("e", 0).Overshoot() != 0 {
		t.Error("empty overshoot should be 0")
	}
}

// TestOvershootInfGuard pins the degenerate Overshoot case (+Inf when
// the settled value is 0) and the Finite export guard that keeps it out
// of JSON/CSV emitters: encoding/json refuses non-finite floats.
func TestOvershootInfGuard(t *testing.T) {
	// Positive peak decaying to an exactly-zero settled value.
	s := NewSeries("z", 0)
	for i := 0; i <= 100; i++ {
		tt := float64(i) / 10
		v := 0.0
		if i < 20 {
			v = 1 - float64(i)/20
		}
		s.MustAppend(tt, v)
	}
	over := s.Overshoot()
	if !math.IsInf(over, 1) {
		t.Fatalf("zero-settle overshoot = %g, want +Inf", over)
	}
	if _, err := json.Marshal(over); err == nil {
		t.Fatal("json accepted +Inf; the guard test is vacuous")
	}
	got := Finite(over, 0)
	if got != 0 {
		t.Fatalf("Finite(+Inf, 0) = %g", got)
	}
	if _, err := json.Marshal(got); err != nil {
		t.Fatalf("sanitized overshoot still unmarshalable: %v", err)
	}
	if Finite(math.NaN(), -1) != -1 {
		t.Error("Finite(NaN) did not substitute")
	}
	if Finite(0.25, -1) != 0.25 {
		t.Error("Finite altered a finite value")
	}
}

func TestPeriod(t *testing.T) {
	s := sine("s", 5, 2001, 1) // 5 Hz over 1 s
	p, err := s.Period(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2) > 0.002 {
		t.Errorf("Period = %g, want 0.2", p)
	}
	flat := NewSeries("f", 0)
	flat.MustAppend(0, 1)
	flat.MustAppend(1, 1)
	if _, err := flat.Period(0); err == nil {
		t.Error("flat series period accepted")
	}
}

func TestRMSAndMean(t *testing.T) {
	s := sine("s", 10, 4001, 1)
	if r := s.RMS(); math.Abs(r-1/math.Sqrt2) > 0.01 {
		t.Errorf("sine RMS = %g, want %g", r, 1/math.Sqrt2)
	}
	if m := s.Mean(); math.Abs(m) > 0.01 {
		t.Errorf("sine mean = %g, want 0", m)
	}
	dc := NewSeries("dc", 0)
	dc.MustAppend(0, 2)
	dc.MustAppend(1, 2)
	if dc.RMS() != 2 || dc.Mean() != 2 {
		t.Error("DC RMS/mean wrong")
	}
	one := NewSeries("one", 0)
	one.MustAppend(0, -3)
	if one.RMS() != 3 || one.Mean() != -3 {
		t.Error("single-sample RMS/mean wrong")
	}
	if NewSeries("e", 0).RMS() != 0 || NewSeries("e2", 0).Mean() != 0 {
		t.Error("empty RMS/mean wrong")
	}
}
