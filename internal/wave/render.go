package wave

import (
	"fmt"
	"io"
	"math"
	"strings"

	"nanosim/internal/units"
)

// WriteCSV emits the set as CSV with a shared, merged time axis; series
// are linearly interpolated onto it. This is the machine-readable output
// of cmd/nanosim.
func (st *Set) WriteCSV(w io.Writer) error {
	if st.Len() == 0 {
		return fmt.Errorf("wave: empty set")
	}
	// Merge all time points.
	seen := make(map[float64]bool)
	var ts []float64
	for _, name := range st.order {
		for _, t := range st.series[name].T {
			if !seen[t] {
				seen[t] = true
				ts = append(ts, t)
			}
		}
	}
	sortFloats(ts)
	if _, err := fmt.Fprintf(w, "%s,%s\n", st.AxisName(), strings.Join(st.order, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := make([]string, 0, st.Len()+1)
		row = append(row, fmt.Sprintf("%.9g", t))
		for _, name := range st.order {
			row = append(row, fmt.Sprintf("%.9g", st.series[name].At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sortFloats(x []float64) {
	// insertion-free path: use sort from stdlib
	// (kept in a helper so render.go reads linearly)
	sortSlice(x)
}

// Plot renders an ASCII chart of the given series (all when names empty)
// with the given terminal dimensions. It is the human-readable output of
// the examples and nanobench, standing in for the paper's figures.
func (st *Set) Plot(w io.Writer, width, height int, names ...string) error {
	if len(names) == 0 {
		names = st.order
	}
	var list []*Series
	for _, n := range names {
		s := st.Get(n)
		if s == nil {
			return fmt.Errorf("wave: no series %q", n)
		}
		if s.Len() > 0 {
			list = append(list, s)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("wave: nothing to plot")
	}
	return PlotSeries(w, width, height, list...)
}

// markers distinguish overlaid series in PlotSeries.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// PlotSeries renders one ASCII chart overlaying the given series.
func PlotSeries(w io.Writer, width, height int, list ...*Series) error {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 20
	}
	if len(list) == 0 {
		return fmt.Errorf("wave: nothing to plot")
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, s := range list {
		if s.Len() == 0 {
			continue
		}
		tMin = math.Min(tMin, s.T[0])
		tMax = math.Max(tMax, s.T[s.Len()-1])
		_, lo, _, hi := s.MinMax()
		vMin = math.Min(vMin, lo)
		vMax = math.Max(vMax, hi)
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range list {
		mk := markers[si%len(markers)]
		for c := 0; c < width; c++ {
			t := tMin + (tMax-tMin)*float64(c)/float64(width-1)
			v := s.At(t)
			r := int(math.Round((vMax - v) / (vMax - vMin) * float64(height-1)))
			if r >= 0 && r < height {
				grid[r][c] = mk
			}
		}
	}
	// Legend.
	var legend []string
	for si, s := range list {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  [%s]\n", strings.Join(legend, "  ")); err != nil {
		return err
	}
	for r := 0; r < height; r++ {
		label := ""
		switch r {
		case 0:
			label = units.Format(vMax, 3)
		case height - 1:
			label = units.Format(vMin, 3)
		case (height - 1) / 2:
			label = units.Format((vMax+vMin)/2, 3)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%10s  %-*s%s\n", "", width-len(units.Format(tMax, 3)), units.Format(tMin, 3), units.Format(tMax, 3))
	return err
}
