package wave

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Series is one named sampled signal. T must be strictly increasing.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// NewSeries allocates an empty named series with capacity hint n.
func NewSeries(name string, n int) *Series {
	return &Series{Name: name, T: make([]float64, 0, n), V: make([]float64, 0, n)}
}

// Append adds a sample; t must exceed the last time already stored.
func (s *Series) Append(t, v float64) error {
	if n := len(s.T); n > 0 && t <= s.T[n-1] {
		return fmt.Errorf("wave: non-increasing time %g after %g in %q", t, s.T[n-1], s.Name)
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
	return nil
}

// MustAppend is Append for generator code whose monotonicity is
// structural; it panics on misuse.
func (s *Series) MustAppend(t, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.T) }

// At evaluates the series at time t by linear interpolation, clamping to
// the end values outside the domain.
func (s *Series) At(t float64) float64 {
	n := len(s.T)
	if n == 0 {
		return 0
	}
	if t <= s.T[0] {
		return s.V[0]
	}
	if t >= s.T[n-1] {
		return s.V[n-1]
	}
	i := sort.SearchFloat64s(s.T, t)
	// s.T[i-1] < t <= s.T[i]
	if s.T[i] == t {
		return s.V[i]
	}
	f := (t - s.T[i-1]) / (s.T[i] - s.T[i-1])
	return s.V[i-1] + f*(s.V[i]-s.V[i-1])
}

// Resample returns the series sampled at n uniform points across its
// domain; comparisons between engines with different adaptive step
// sequences go through this.
func (s *Series) Resample(n int) (*Series, error) {
	if s.Len() < 2 {
		return nil, fmt.Errorf("wave: resampling %q needs >= 2 samples", s.Name)
	}
	if n < 2 {
		return nil, errors.New("wave: resample target must be >= 2")
	}
	r := NewSeries(s.Name, n)
	t0, t1 := s.T[0], s.T[len(s.T)-1]
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		r.T = append(r.T, t)
		r.V = append(r.V, s.At(t))
	}
	return r, nil
}

// MinMax returns the extreme values and their times.
func (s *Series) MinMax() (tMin, vMin, tMax, vMax float64) {
	if s.Len() == 0 {
		return 0, 0, 0, 0
	}
	vMin, vMax = s.V[0], s.V[0]
	tMin, tMax = s.T[0], s.T[0]
	for i, v := range s.V {
		if v < vMin {
			vMin, tMin = v, s.T[i]
		}
		if v > vMax {
			vMax, tMax = v, s.T[i]
		}
	}
	return
}

// Final returns the last sample value (0 for an empty series).
func (s *Series) Final() float64 {
	if s.Len() == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Crossings returns the times at which the series crosses level with the
// given direction: +1 rising only, -1 falling only, 0 both. Times are
// linearly interpolated.
func (s *Series) Crossings(level float64, direction int) []float64 {
	var out []float64
	for i := 1; i < s.Len(); i++ {
		a, b := s.V[i-1], s.V[i]
		rising := a < level && b >= level
		falling := a > level && b <= level
		if (direction >= 0 && rising) || (direction <= 0 && falling) {
			f := (level - a) / (b - a)
			out = append(out, s.T[i-1]+f*(s.T[i]-s.T[i-1]))
		}
	}
	return out
}

// RiseTime returns the 10%-90% rise time of the first transition from
// vLow to vHigh, or an error when the series never completes one.
func (s *Series) RiseTime(vLow, vHigh float64) (float64, error) {
	lo := vLow + 0.1*(vHigh-vLow)
	hi := vLow + 0.9*(vHigh-vLow)
	cLo := s.Crossings(lo, +1)
	cHi := s.Crossings(hi, +1)
	if len(cLo) == 0 || len(cHi) == 0 {
		return 0, fmt.Errorf("wave: %q has no complete rise through [%g, %g]", s.Name, lo, hi)
	}
	for _, t1 := range cHi {
		if t1 >= cLo[0] {
			return t1 - cLo[0], nil
		}
	}
	return 0, fmt.Errorf("wave: %q rise did not complete", s.Name)
}

// SettleValue returns the mean of the last fraction frac of the samples,
// a robust "settled output" measure for latching circuits.
func (s *Series) SettleValue(frac float64) float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	sum := 0.0
	for _, v := range s.V[n-k:] {
		sum += v
	}
	return sum / float64(k)
}

// CompareOn resamples both series onto n shared points over the
// intersection of their domains and returns the pointwise values, for
// error metrics between engines.
func CompareOn(a, b *Series, n int) (va, vb []float64, err error) {
	if a.Len() < 2 || b.Len() < 2 {
		return nil, nil, errors.New("wave: CompareOn needs >= 2 samples in each series")
	}
	t0 := math.Max(a.T[0], b.T[0])
	t1 := math.Min(a.T[a.Len()-1], b.T[b.Len()-1])
	if t1 <= t0 {
		return nil, nil, errors.New("wave: series domains do not overlap")
	}
	va = make([]float64, n)
	vb = make([]float64, n)
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		va[i] = a.At(t)
		vb[i] = b.At(t)
	}
	return va, vb, nil
}

// Set is an ordered collection of series keyed by name, the result type
// of every analysis.
type Set struct {
	// Axis names the shared horizontal axis of the set's series for
	// emitters (CSV headers, plot labels): "t" when empty — the transient
	// convention — "f" for frequency-domain results (.ac sweeps).
	Axis string

	order  []string
	series map[string]*Series
}

// AxisName returns the horizontal-axis label, defaulting to "t".
func (st *Set) AxisName() string {
	if st.Axis == "" {
		return "t"
	}
	return st.Axis
}

// NewSet returns an empty set.
func NewSet() *Set {
	return &Set{series: make(map[string]*Series)}
}

// NewSetSized returns an empty set pre-sized for n series, avoiding
// incremental map growth when the caller knows the signal count up
// front (a recorder over a large deck adds one series per node).
func NewSetSized(n int) *Set {
	return &Set{series: make(map[string]*Series, n), order: make([]string, 0, n)}
}

// Add inserts a series; a duplicate name is an error.
func (st *Set) Add(s *Series) error {
	if _, dup := st.series[s.Name]; dup {
		return fmt.Errorf("wave: duplicate series %q", s.Name)
	}
	st.series[s.Name] = s
	st.order = append(st.order, s.Name)
	return nil
}

// Get returns the named series or nil.
func (st *Set) Get(name string) *Series { return st.series[name] }

// Names returns the series names in insertion order.
func (st *Set) Names() []string { return append([]string(nil), st.order...) }

// Len returns the number of series.
func (st *Set) Len() int { return len(st.order) }
