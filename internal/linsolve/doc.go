// Package linsolve gives the circuit engines one assembly-and-solve
// interface with interchangeable dense and sparse backends. Engines stamp
// coefficients with Add, then Solve; whether an O(n^3) dense LU or a
// Markowitz sparse LU runs underneath is a per-simulation option, which is
// how the scaling benchmarks isolate algorithmic speedups (SWEC vs NR)
// from backend effects.
//
// Both backends exploit the fact that a circuit's sparsity pattern is
// fixed for the life of a run. The sparse backend records the first
// assembly's Add sequence, compiles it into a slot table (every later
// Reset/Add is a pure array write — zero map operations), performs the
// min-degree symbolic analysis once, and redoes only the numerics on
// later steps, falling back to a fresh full factorization when a reused
// pivot drifts numerically bad. The dense backend reuses its
// factorization storage. In steady state neither backend allocates on
// the Reset → Add... → Solve cycle. See DESIGN.md §7.
//
// The same pattern-stability argument extends across whole simulations:
// a Monte Carlo trial of a perturbed circuit stamps the identical
// sequence, so the process-variation runner (internal/vary) hands one
// solver to every trial a worker executes and the per-step hot path
// stays allocation-free batch-wide. CarriesPivotOrder tells such batch
// runners whether a backend's pivot order is history-dependent and must
// be re-warmed after a drift fallback (DESIGN.md §9).
package linsolve
