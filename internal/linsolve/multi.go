package linsolve

import (
	"errors"
	"fmt"

	"nanosim/internal/spmat"
)

// This file is the batched face of the linsolve package, wrapping the
// spmat multi-RHS kernels (spmat/lu_multi.go) in the Solver state
// machine:
//
//   - MultiRHS / ComplexMultiRHS: a backend capability — solve k
//     right-hand sides against ONE assembled matrix and factorization.
//     The sparse backends implement it; consumers type-assert and fall
//     back to a scalar Solve loop when the backend does not.
//
//   - SparseMultiOf: lockstep assembly and numeric factorization of k
//     same-pattern systems (AC frequency lanes, Monte-Carlo
//     operating-point lanes) against a compiled base solver. The base
//     solver donates its recorded stamp sequence, compiled pattern and
//     pivot order but is never mutated — a failed batch cannot corrupt
//     the base's warm state, which is what makes the serial fallback
//     (and therefore bit-identical results at any lane count) cheap to
//     guarantee.

// MultiRHS is implemented by real-valued backends that can solve several
// right-hand sides against one factorization. b and x are column-major
// with RHS c occupying [c*n, (c+1)*n); lane c's result is bit-identical
// to a scalar Solve of the same vector.
type MultiRHS interface {
	SolveMulti(b, x []float64, k int) error
}

// ComplexMultiRHS is the complex-valued counterpart of MultiRHS.
type ComplexMultiRHS interface {
	SolveMulti(b, x []complex128, k int) error
}

// SolveMulti solves k right-hand sides against the currently assembled
// matrix, factoring (or refactoring) it exactly as Solve would first.
func (s *sparseOf[T]) SolveMulti(b, x []T, k int) error {
	if err := s.ensureFactored(); err != nil {
		return err
	}
	s.lu.SolveMulti(b, x, k, s.fc)
	return nil
}

// ErrMultiStale reports that the base solver's compiled pattern or
// factorization changed (pattern rebuild, pivot-drift full factor) after
// the batch wrapper was built; the caller must construct a fresh one.
var ErrMultiStale = errors.New("linsolve: base solver re-factored since the batch wrapper was built; rebuild it")

// errMultiMismatch reports a lane assembly that diverged from the base
// solver's recorded stamp sequence.
var errMultiMismatch = errors.New("linsolve: lane stamp sequence diverged from the base solver's")

// SparseMultiOf assembles and numerically factors k same-pattern systems
// in lockstep. Build one from a warmed sparse solver (compiled pattern +
// prepared factorization), then per batch: Begin, stamp every lane
// through LaneAdder (the same Add sequence the base recorded), Refactor,
// SolveEach. Lane c's solution is bit-identical to assembling lane c's
// values into the base solver and calling Solve — as long as Refactor
// reports no pivot drift, in which case the caller redoes the batch
// through the scalar path lane by lane.
type SparseMultiOf[T spmat.Scalar] struct {
	base *sparseOf[T]
	pat  *spmat.PatternOf[T] // base state snapshot for staleness checks
	lu   *spmat.LUOf[T]

	k        int
	mp       *spmat.MultiPatternOf[T]
	bf       *spmat.BatchLUOf[T]
	cursors  []int
	mismatch bool
	stats    SolveStats
}

// SparseRealMulti batches the real-valued sparse backend (MC lanes).
type SparseRealMulti = SparseMultiOf[float64]

// SparseComplexMulti batches the complex sparse backend (AC lanes).
type SparseComplexMulti = SparseMultiOf[complex128]

// NewSparseMulti builds a k-lane batch wrapper over a warmed real sparse
// solver. Returns (nil, false) when the base is not the sparse backend
// or has not compiled+factored yet (callers then keep the scalar path).
func NewSparseMulti(base Solver, lanes int) (*SparseRealMulti, bool) {
	s, ok := base.(*sparseOf[float64])
	if !ok {
		return nil, false
	}
	return newSparseMultiOf(s, lanes)
}

// NewSparseComplexMulti builds a k-lane batch wrapper over a warmed
// complex sparse solver; see NewSparseMulti.
func NewSparseComplexMulti(base ComplexSolver, lanes int) (*SparseComplexMulti, bool) {
	s, ok := base.(*sparseOf[complex128])
	if !ok {
		return nil, false
	}
	return newSparseMultiOf(s, lanes)
}

func newSparseMultiOf[T spmat.Scalar](s *sparseOf[T], lanes int) (*SparseMultiOf[T], bool) {
	if lanes <= 0 || s.pat == nil || s.lu == nil {
		return nil, false
	}
	bf, err := spmat.NewBatchLU(s.lu, lanes)
	if err != nil {
		return nil, false
	}
	return &SparseMultiOf[T]{
		base:    s,
		pat:     s.pat,
		lu:      s.lu,
		k:       lanes,
		mp:      spmat.NewMultiPattern(s.pat, lanes),
		bf:      bf,
		cursors: make([]int, lanes),
	}, true
}

// Lanes returns the lane count k.
func (m *SparseMultiOf[T]) Lanes() int { return m.k }

// N returns the system dimension.
func (m *SparseMultiOf[T]) N() int { return m.base.n }

// Begin starts a new batch: all lane values cleared, all lane cursors
// rewound.
func (m *SparseMultiOf[T]) Begin() {
	m.mp.Zero()
	for i := range m.cursors {
		m.cursors[i] = 0
	}
	m.mismatch = false
}

// MultiLane stamps one lane of a SparseMultiOf; it satisfies the same
// structural Add interface the scalar solvers expose, so existing stamp
// code drives it unchanged.
type MultiLane[T spmat.Scalar] struct {
	m    *SparseMultiOf[T]
	lane int
}

// LaneAdder returns the stamping adapter for lane l. Every Add is
// verified positionally against the base solver's recorded sequence; a
// divergence marks the whole batch mismatched (checked by Refactor) —
// lanes must be structurally identical to the base circuit.
func (m *SparseMultiOf[T]) LaneAdder(l int) MultiLane[T] {
	return MultiLane[T]{m: m, lane: l}
}

// Add accumulates v into A[i][j] of this lane.
func (a MultiLane[T]) Add(i, j int, v T) {
	m := a.m
	cur := m.cursors[a.lane]
	if cur >= len(m.base.seq) || m.base.seq[cur] != spmat.Key(i, j) {
		m.mismatch = true
		return
	}
	m.mp.AddSlot(m.base.slots[cur], a.lane, v)
	m.cursors[a.lane] = cur + 1
}

// Mismatched reports whether any lane's stamp sequence diverged from the
// base solver's since Begin.
func (m *SparseMultiOf[T]) Mismatched() bool { return m.mismatch }

// Refactor numerically factors every lane against the shared pivot
// order. Returns spmat.ErrPivotDrift/ErrSingular when any lane cannot
// reuse the order (redo the batch through the scalar path), an
// ErrMultiStale when the base solver re-factored underneath us, and a
// mismatch error when a lane's assembly diverged.
func (m *SparseMultiOf[T]) Refactor() error {
	if m.mismatch {
		return errMultiMismatch
	}
	if m.base.pat != m.pat || m.base.lu != m.lu {
		return ErrMultiStale
	}
	for l, cur := range m.cursors {
		if cur != len(m.base.seq) {
			return fmt.Errorf("%w (lane %d stamped %d of %d entries)", errMultiMismatch, l, cur, len(m.base.seq))
		}
	}
	if err := m.bf.RefactorNumericMulti(m.mp, m.base.fc); err != nil {
		return err
	}
	// Counted on the wrapper, not the base: the base solver is strictly
	// read-only here (several wrappers may share one warm base across
	// goroutines), and the scalar path would have counted one numeric
	// refactor per lane.
	m.stats.NumericRefactor += m.k
	return nil
}

// SolveStats reports the batch wrapper's own factorization accounting
// (one NumericRefactor per lane per successful Refactor). The base
// solver's stats are not touched by batch operations.
func (m *SparseMultiOf[T]) SolveStats() SolveStats { return m.stats }

// SolveEach solves lane c's system against lane c's factors from the
// last Refactor. b and x are column-major with lane c at [c*n, (c+1)*n).
func (m *SparseMultiOf[T]) SolveEach(b, x []T) {
	m.bf.SolveEach(b, x, m.base.fc)
}
