package linsolve

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// adder is the structural stamping interface shared by Solver and
// MultiLane.
type adder interface {
	Add(i, j int, v float64)
}

// stampLadderInto assembles the conductance ladder the solver benches
// use: g[i] couples node i to i+1, every node leaks to ground.
func stampLadderInto(a adder, g []float64) {
	n := len(g) + 1
	for i := 0; i < n; i++ {
		a.Add(i, i, 1e-4)
	}
	for i, gi := range g {
		a.Add(i, i, gi)
		a.Add(i+1, i+1, gi)
		a.Add(i, i+1, -gi)
		a.Add(i+1, i, -gi)
	}
}

func ladderG(rng *rand.Rand, n int) []float64 {
	g := make([]float64, n-1)
	for i := range g {
		g[i] = 1e-3 * (1 + rng.Float64())
	}
	return g
}

// warmSparse returns a compiled+factored sparse solver for the ladder.
func warmSparse(t testing.TB, g []float64) Solver {
	t.Helper()
	n := len(g) + 1
	s := NewSparse(n, nil)
	stampLadderInto(s, g)
	b := make([]float64, n)
	b[0] = 1
	x := make([]float64, n)
	if err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSolveMultiBackendBitIdenticalDeterministic locks the MultiRHS
// backend capability to the scalar Solve on the same factorization.
func TestSolveMultiBackendBitIdenticalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	g := ladderG(rng, n)
	s := warmSparse(t, g)
	mr, ok := s.(MultiRHS)
	if !ok {
		t.Fatal("sparse backend does not implement MultiRHS")
	}
	k := 5
	b := make([]float64, n*k)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n*k)
	if err := mr.SolveMulti(b, x, k); err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, n)
	for c := 0; c < k; c++ {
		if err := s.Solve(b[c*n:(c+1)*n], xc); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if x[c*n+i] != xc[i] {
				t.Fatalf("lane %d row %d: %v != scalar %v", c, i, x[c*n+i], xc[i])
			}
		}
	}
}

// TestSparseMultiLanesBitIdenticalDeterministic drives the lockstep
// batch wrapper through assemble→Refactor→SolveEach and checks every
// lane bitwise against the scalar restamp+Solve path on the base.
func TestSparseMultiLanesBitIdenticalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	g := ladderG(rng, n)
	s := warmSparse(t, g)
	k := 4
	m, ok := NewSparseMulti(s, k)
	if !ok {
		t.Fatal("NewSparseMulti refused a warmed sparse solver")
	}
	// Lane c perturbs every conductance by a lane-specific factor.
	laneG := make([][]float64, k)
	for c := range laneG {
		gc := make([]float64, len(g))
		for i := range gc {
			gc[i] = g[i] * (1 + 0.05*rng.NormFloat64())
		}
		laneG[c] = gc
	}
	b := make([]float64, n*k)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n*k)
	for cycle := 0; cycle < 3; cycle++ {
		m.Begin()
		for c := 0; c < k; c++ {
			stampLadderInto(m.LaneAdder(c), laneG[c])
		}
		if m.Mismatched() {
			t.Fatal("lane assembly mismatched")
		}
		if err := m.Refactor(); err != nil {
			t.Fatal(err)
		}
		m.SolveEach(b, x)
		xc := make([]float64, n)
		for c := 0; c < k; c++ {
			s.Reset()
			stampLadderInto(s, laneG[c])
			if err := s.Solve(b[c*n:(c+1)*n], xc); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if x[c*n+i] != xc[i] {
					t.Fatalf("cycle %d lane %d row %d: %v != scalar %v",
						cycle, c, i, x[c*n+i], xc[i])
				}
			}
		}
	}
	if got := m.SolveStats().NumericRefactor; got != 3*k {
		t.Errorf("wrapper NumericRefactor = %d, want %d", got, 3*k)
	}
}

// TestSparseMultiMismatchAndStale verifies the two guard rails: a lane
// stamped in a diverging order refuses to refactor, and a base solver
// that re-compiled its pattern invalidates the wrapper.
func TestSparseMultiMismatchAndStale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 12
	g := ladderG(rng, n)
	s := warmSparse(t, g)
	m, ok := NewSparseMulti(s, 2)
	if !ok {
		t.Fatal("NewSparseMulti refused a warmed sparse solver")
	}
	m.Begin()
	m.LaneAdder(0).Add(n-1, n-1, 1) // not the recorded first stamp
	if !m.Mismatched() {
		t.Error("diverging lane stamp not flagged")
	}
	if err := m.Refactor(); err == nil {
		t.Error("Refactor succeeded on a mismatched batch")
	}

	// Stamp a different structure into the base: pattern decompiles and
	// recompiles, so the wrapper must refuse with ErrMultiStale.
	s.Reset()
	s.Add(0, n-1, 1e-3)
	stampLadderInto(s, g)
	b := make([]float64, n)
	x := make([]float64, n)
	b[0] = 1
	if err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	m.Begin()
	stampLadderInto(m.LaneAdder(0), g)
	stampLadderInto(m.LaneAdder(1), g)
	err := m.Refactor()
	if !errors.Is(err, ErrMultiStale) && err == nil {
		t.Errorf("Refactor on stale wrapper returned %v, want ErrMultiStale or mismatch", err)
	}
}

// TestMultiRHSHammerDeterministic is the -race hammer for the batched
// kernels: many goroutines share ONE warm base solver read-only, each
// owning a private batch wrapper and RHS storage, concurrently running
// assemble→Refactor→SolveEach cycles. Results must be bit-stable across
// iterations and goroutines.
func TestMultiRHSHammerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 30
	g := ladderG(rng, n)
	s := warmSparse(t, g)
	const workers = 8
	const iters = 25
	k := 3

	// Shared deterministic inputs, computed up front.
	laneG := make([][]float64, k)
	for c := range laneG {
		gc := make([]float64, len(g))
		for i := range gc {
			gc[i] = g[i] * (1 + 0.03*rng.NormFloat64())
		}
		laneG[c] = gc
	}
	b := make([]float64, n*k)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// Serial reference through a private wrapper.
	ref := make([]float64, n*k)
	{
		m, ok := NewSparseMulti(s, k)
		if !ok {
			t.Fatal("NewSparseMulti refused a warmed sparse solver")
		}
		m.Begin()
		for c := 0; c < k; c++ {
			stampLadderInto(m.LaneAdder(c), laneG[c])
		}
		if err := m.Refactor(); err != nil {
			t.Fatal(err)
		}
		m.SolveEach(b, ref)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m, ok := NewSparseMulti(s, k)
			if !ok {
				errs[w] = errors.New("NewSparseMulti refused shared base")
				return
			}
			x := make([]float64, n*k)
			for it := 0; it < iters; it++ {
				m.Begin()
				for c := 0; c < k; c++ {
					stampLadderInto(m.LaneAdder(c), laneG[c])
				}
				if err := m.Refactor(); err != nil {
					errs[w] = err
					return
				}
				m.SolveEach(b, x)
				for i := range x {
					if x[i] != ref[i] {
						errs[w] = errors.New("worker result diverged from serial reference")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}

	// The hammer must not have perturbed the base's warm state.
	st := s.(Refactorable).SolveStats()
	if st.PatternRebuild != 0 {
		t.Errorf("base solver pattern rebuilt %d times during hammer", st.PatternRebuild)
	}
}
