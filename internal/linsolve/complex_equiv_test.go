package linsolve

import (
	"math"
	"math/rand"
	"testing"
)

// stampC mirrors circuitShape.stamp onto the complex solver with zero
// imaginary parts.
func (s circuitShape) stampC(sol ComplexSolver, g []float64, gmin, backbone float64) {
	sol.Reset()
	for i := 0; i < s.n; i++ {
		sol.Add(i, i, complex(gmin, 0))
		sol.Add(i, i, complex(backbone, 0))
	}
	for d := range s.devA {
		ia, ib, gd := s.devA[d], s.devB[d], complex(g[d], 0)
		if ia >= 0 {
			sol.Add(ia, ia, gd)
		}
		if ib >= 0 {
			sol.Add(ib, ib, gd)
		}
		if ia >= 0 && ib >= 0 {
			sol.Add(ia, ib, -gd)
			sol.Add(ib, ia, -gd)
		}
	}
	for k := range s.srcRow {
		sol.Add(s.srcNode[k], s.srcRow[k], 1)
		sol.Add(s.srcRow[k], s.srcNode[k], 1)
	}
}

// TestComplexZeroImagBitIdentical is the guard rail of the spmat/linsolve
// generics refactor: on randomized circuit-shaped stamped systems with
// zero imaginary parts, the complex instantiation must follow the exact
// arithmetic of the real path — same pivot choices (cmplx.Abs(x+0i) is
// exactly |x|), same elimination order, same rounding — so every
// solution component is bit-identical to the real solver's, across
// repeated restamp cycles exercising both the compiled fast path and the
// numeric-refactor program.
func TestComplexZeroImagBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	refactors := 0
	for trial := 0; trial < 25; trial++ {
		nodes := 3 + rng.Intn(30)
		branches := rng.Intn(3)
		shape := randShape(rng, nodes, branches)
		n := shape.n

		re := NewSparse(n, nil)
		co := NewSparseComplex(n, nil)
		g := make([]float64, len(shape.devA))
		rhs := make([]float64, n)
		rhsC := make([]complex128, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
			rhsC[i] = complex(rhs[i], 0)
		}
		xr := make([]float64, n)
		xc := make([]complex128, n)

		for cyc := 0; cyc < 6; cyc++ {
			for d := range g {
				g[d] = math.Pow(10, -4+6*rng.Float64())
				if rng.Intn(10) == 0 {
					g[d] = 0
				}
			}
			shape.stamp(re, g, 1e-9, 1e-3)
			shape.stampC(co, g, 1e-9, 1e-3)
			if err := re.Solve(rhs, xr); err != nil {
				t.Fatalf("trial %d cycle %d: real: %v", trial, cyc, err)
			}
			if err := co.Solve(rhsC, xc); err != nil {
				t.Fatalf("trial %d cycle %d: complex: %v", trial, cyc, err)
			}
			for i := range xr {
				creal, cimag := real(xc[i]), imag(xc[i])
				if math.Float64bits(creal) != math.Float64bits(xr[i]) {
					t.Fatalf("trial %d cycle %d: component %d differs: real %x (%g) vs complex %x (%g)",
						trial, cyc, i, math.Float64bits(xr[i]), xr[i], math.Float64bits(creal), creal)
				}
				if cimag != 0 {
					t.Fatalf("trial %d cycle %d: component %d grew an imaginary part %g", trial, cyc, i, cimag)
				}
			}
		}
		// Both backends must have taken the same amortization decisions.
		rs := re.(Refactorable).SolveStats()
		cs := co.(Refactorable).SolveStats()
		if rs != cs {
			t.Fatalf("trial %d: solve stats diverge: real %+v vs complex %+v", trial, rs, cs)
		}
		refactors += cs.NumericRefactor
	}
	if refactors == 0 {
		t.Fatal("property never exercised the numeric-refactor path")
	}
}

// TestComplexSolverSteadyStateAllocs extends the zero-allocation
// guarantee to the complex instantiation: once the pattern is compiled,
// a full Reset -> restamp -> Solve cycle is allocation-free.
func TestComplexSolverSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shape := randShape(rng, 40, 2)
	g := make([]float64, len(shape.devA))
	for d := range g {
		g[d] = 1e-3 * float64(d+1)
	}
	rhs := make([]complex128, shape.n)
	rhs[0] = 1
	x := make([]complex128, shape.n)

	sol := NewSparseComplex(shape.n, nil)
	shape.stampC(sol, g, 1e-9, 1e-3)
	if err := sol.Solve(rhs, x); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for d := range g {
			g[d] += 1e-6
		}
		shape.stampC(sol, g, 1e-9, 1e-3)
		if err := sol.Solve(rhs, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("complex steady-state cycle allocates %.1f times, want 0", allocs)
	}
}
