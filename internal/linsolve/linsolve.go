package linsolve

import (
	"nanosim/internal/flop"
	"nanosim/internal/mat"
	"nanosim/internal/spmat"
)

// Solver accumulates a square system A*x = b and solves it. Reset clears
// A (and b) for the next time step; implementations keep their storage.
type Solver interface {
	// N returns the system dimension.
	N() int
	// Reset clears all stamped coefficients.
	Reset()
	// Add accumulates v into A[i][j].
	Add(i, j int, v float64)
	// At reports the accumulated A[i][j] (diagnostics and tests).
	At(i, j int) float64
	// Solve factors A and solves A*x = b, writing into x.
	// b is not modified. Returns mat.ErrSingular/spmat.ErrSingular
	// equivalents on numerically singular systems.
	Solve(b, x []float64) error
}

// SolveStats reports how a backend amortized its factorization work.
type SolveStats struct {
	// FullFactor counts complete (symbolic + numeric) factorizations,
	// including pivot-drift fallbacks after the first.
	FullFactor int
	// NumericRefactor counts pattern-reusing numeric-only refactorizations.
	NumericRefactor int
	// PatternRebuild counts stamp-sequence divergences that forced the
	// compiled pattern to be re-recorded.
	PatternRebuild int
	// Reused counts solves that skipped factorization entirely because
	// nothing was restamped since the previous Solve.
	Reused int
}

// Accumulate folds another stats record into s (batch reductions).
func (s *SolveStats) Accumulate(o SolveStats) {
	s.FullFactor += o.FullFactor
	s.NumericRefactor += o.NumericRefactor
	s.PatternRebuild += o.PatternRebuild
	s.Reused += o.Reused
}

// Refactorable is the capability interface backends implement when they
// reuse factorization structure across Solve calls; engines and tests use
// it to verify the hot path engaged.
type Refactorable interface {
	SolveStats() SolveStats
}

// orderCarrying marks backends whose factorization reuses a pivot order
// chosen by an earlier full factorization, so later solves depend on
// which matrix was factored first. The dense backend recomputes its
// pivots from scratch on every refactor and is therefore history-free.
type orderCarrying interface {
	carriesPivotOrder() bool
}

// CarriesPivotOrder reports whether s reuses a previously chosen pivot
// order across Solve calls. Batch runners that share one solver across
// many independent simulations (internal/vary) use this to decide when a
// drift-triggered refactorization replaced the pivot order mid-batch and
// the solver must be re-warmed to keep results independent of batch
// partitioning.
func CarriesPivotOrder(s Solver) bool {
	o, ok := s.(orderCarrying)
	return ok && o.carriesPivotOrder()
}

// Factory builds a Solver of dimension n with work charged to fc.
// Engines receive a Factory so simulations pick the backend.
type Factory func(n int, fc *flop.Counter) Solver

// dense adapts mat.Dense + LU to the Solver interface.
type dense struct {
	a     *mat.Dense
	work  *mat.Dense
	f     *mat.LU
	fc    *flop.Counter
	dirty bool
	stats SolveStats
}

// NewDense returns a dense-backend solver; the right default below the
// Auto crossover.
func NewDense(n int, fc *flop.Counter) Solver {
	return &dense{a: mat.NewDense(n, n), work: mat.NewDense(n, n), fc: fc, dirty: true}
}

func (d *dense) N() int { return d.a.Rows() }
func (d *dense) Reset() {
	d.a.Zero()
	d.dirty = true
}
func (d *dense) Add(i, j int, v float64) {
	d.a.Add(i, j, v)
	d.dirty = true
}
func (d *dense) At(i, j int) float64 { return d.a.At(i, j) }
func (d *dense) Solve(b, x []float64) error {
	if d.dirty || d.f == nil {
		d.work.CopyFrom(d.a)
		if d.f == nil {
			f, err := mat.FactorInPlace(d.work, d.fc)
			if err != nil {
				return err
			}
			d.f = f
		} else if err := d.f.Refactor(d.work, d.fc); err != nil {
			return err
		}
		d.stats.FullFactor++
		d.dirty = false
	} else {
		d.stats.Reused++
	}
	d.f.Solve(b, x, d.fc)
	return nil
}
func (d *dense) SolveStats() SolveStats { return d.stats }

// sparseOf adapts spmat to the Solver shape with a compiled stamp
// pattern and symbolic-reuse factorization, generic over the scalar
// domain: the float64 instantiation is the Solver backend of every
// transient/DC engine, the complex128 instantiation backs the AC
// small-signal sweep (same pattern across frequency points, numeric
// refactor per point).
//
// Lifecycle: the first assembly runs in recording mode — stamps go into
// a map-backed Triplet while the Add sequence is logged. The first Solve
// compiles the sequence into a Pattern (slot table), runs the full
// symbolic+numeric factorization on it, and prepares the reuse program.
// Every later assembly verifies each Add positionally against the
// recorded sequence and lands in a compiled slot: zero map operations,
// zero allocations. If the stamp order ever diverges (a different
// circuit configuration on the same solver), the pattern is re-recorded.
type sparseOf[T spmat.Scalar] struct {
	n  int
	fc *flop.Counter

	t   *spmat.TripletOf[T] // recording mode accumulator (nil once compiled)
	seq []int64             // recorded Add-coordinate sequence

	pat    *spmat.PatternOf[T] // compiled pattern (nil while recording)
	slots  []int32             // per-sequence-position slot into pat
	cursor int                 // next expected position during compiled assembly

	lu    *spmat.LUOf[T]
	dirty bool
	stats SolveStats
}

// NewSparse returns a sparse-backend solver for large circuits.
func NewSparse(n int, fc *flop.Counter) Solver {
	return newSparseOf[float64](n, fc)
}

func newSparseOf[T spmat.Scalar](n int, fc *flop.Counter) *sparseOf[T] {
	return &sparseOf[T]{n: n, fc: fc, t: spmat.NewTripletOf[T](n, n), dirty: true}
}

func (s *sparseOf[T]) N() int { return s.n }

func (s *sparseOf[T]) Reset() {
	s.dirty = true
	if s.pat != nil {
		s.pat.Zero()
		s.cursor = 0
		return
	}
	s.t.Zero()
	s.seq = s.seq[:0]
}

func (s *sparseOf[T]) Add(i, j int, v T) {
	s.dirty = true
	if s.pat != nil {
		// Compiled fast path: positional slot lookup, no map, no alloc.
		if s.cursor < len(s.seq) && s.seq[s.cursor] == spmat.Key(i, j) {
			s.pat.AddSlot(s.slots[s.cursor], v)
			s.cursor++
			return
		}
		s.decompile()
	}
	s.t.Add(i, j, v)
	s.seq = append(s.seq, spmat.Key(i, j))
}

// decompile falls back to recording mode after a stamp-sequence
// divergence: the values accumulated so far are spilled into the map
// accumulator and the sequence prefix that did match is kept, so the
// next Solve re-records and re-compiles the pattern. The kept prefix is
// copied rather than resliced: solvers cloned from a SparseTemplate
// share one sequence backing array, and appending into a truncated
// shared slice would corrupt their recorded sequences.
func (s *sparseOf[T]) decompile() {
	s.stats.PatternRebuild++
	t := spmat.NewTripletOf[T](s.n, s.n)
	s.pat.EachNonzero(func(i, j int, v T) { t.Add(i, j, v) })
	s.t = t
	s.seq = append([]int64(nil), s.seq[:s.cursor]...)
	s.pat, s.slots, s.lu, s.cursor = nil, nil, nil, 0
}

func (s *sparseOf[T]) At(i, j int) T {
	if s.pat != nil {
		return s.pat.At(i, j)
	}
	return s.t.At(i, j)
}

func (s *sparseOf[T]) Solve(b, x []T) error {
	if err := s.ensureFactored(); err != nil {
		return err
	}
	s.lu.Solve(b, x, s.fc)
	return nil
}

// ensureFactored brings the factorization in sync with the assembled
// matrix: compile on first use, numeric refactor when dirty, full
// factorization on pivot drift. Shared by Solve and SolveMulti so the
// multi-RHS path reuses the exact same state machine.
func (s *sparseOf[T]) ensureFactored() error {
	if s.pat == nil {
		// First assembly (or post-divergence): compile the recorded
		// sequence, scatter the accumulated values in, full-factor.
		pat, slots := spmat.CompilePatternOf[T](s.n, s.seq)
		s.t.Each(func(i, j int, v T) { pat.SetAt(i, j, v) })
		s.pat, s.slots = pat, slots
		s.t = nil
		s.cursor = len(s.seq)
		s.lu = nil
	}
	if s.dirty || s.lu == nil {
		if s.lu != nil {
			err := s.lu.RefactorNumeric(s.pat, s.fc)
			if err == nil {
				s.stats.NumericRefactor++
				s.dirty = false
				return nil
			}
			if err != spmat.ErrPivotDrift && err != spmat.ErrSingular {
				return err
			}
			// Fall through to a fresh full factorization: the reused
			// pivot order went numerically bad.
		}
		lu, err := spmat.FactorPattern(s.pat, s.fc)
		if err != nil {
			// Drop the old LU: its numeric content may be partially
			// overwritten by the failed refactor, and keeping it around
			// invites a retry path that trusts stale structure.
			s.lu = nil
			return err
		}
		lu.PrepareReuse()
		s.lu = lu
		s.stats.FullFactor++
		s.dirty = false
	} else {
		s.stats.Reused++
	}
	return nil
}

func (s *sparseOf[T]) SolveStats() SolveStats { return s.stats }

// carriesPivotOrder implements orderCarrying: the sparse backend keeps
// the min-degree pivot order of its last full factorization.
func (s *sparseOf[T]) carriesPivotOrder() bool { return true }

// ComplexSolver is the complex-valued counterpart of Solver, the linear
// backend of the AC small-signal analysis. The sparse implementation
// shares the compiled-pattern + symbolic-LU machinery with the real
// path through the spmat generics: across an AC frequency sweep the
// stamp sequence is identical at every point, so after the first solve
// each frequency costs one allocation-free numeric refactor.
type ComplexSolver interface {
	// N returns the system dimension.
	N() int
	// Reset clears all stamped coefficients.
	Reset()
	// Add accumulates v into A[i][j].
	Add(i, j int, v complex128)
	// At reports the accumulated A[i][j] (diagnostics and tests).
	At(i, j int) complex128
	// Solve factors A and solves A*x = b, writing into x.
	Solve(b, x []complex128) error
}

// NewSparseComplex returns the sparse complex-valued solver.
func NewSparseComplex(n int, fc *flop.Counter) ComplexSolver {
	return newSparseOf[complex128](n, fc)
}

// ComplexFactory builds a ComplexSolver of dimension n; the AC engine
// receives one so tests can substitute instrumented backends.
type ComplexFactory func(n int, fc *flop.Counter) ComplexSolver

// AutoCrossover is the dense/sparse crossover dimension used by Auto,
// re-measured against the compiled-pattern sparse path by
// BenchmarkSolverStep (bench_test.go) and `nanobench -solverbench`
// (which records the measurement in BENCH_solver.json). On circuit-shaped
// (near-tridiagonal) systems the steady-state sparse refactor is O(nnz)
// while the dense refactor is O(n^3), so sparse now wins at every
// measured size — far below the 160 calibrated against the old
// factor-from-scratch path. Dense is kept for the smallest systems,
// where fully coupled matrices (the sparse path's worst case, ~25%
// slower) are plausible and partial pivoting is the more robust choice.
const AutoCrossover = 8

// Auto picks the dense backend for small systems and sparse above the
// crossover.
func Auto(n int, fc *flop.Counter) Solver {
	if n <= AutoCrossover {
		return NewDense(n, fc)
	}
	return NewSparse(n, fc)
}
