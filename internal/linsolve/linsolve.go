// Package linsolve gives the circuit engines one assembly-and-solve
// interface with interchangeable dense and sparse backends. Engines stamp
// coefficients with Add, then Solve; whether an O(n^3) dense LU or a
// Markowitz sparse LU runs underneath is a per-simulation option, which is
// how the scaling benchmarks isolate algorithmic speedups (SWEC vs NR)
// from backend effects.
package linsolve

import (
	"nanosim/internal/flop"
	"nanosim/internal/mat"
	"nanosim/internal/spmat"
)

// Solver accumulates a square system A*x = b and solves it. Reset clears
// A (and b) for the next time step; implementations keep their storage.
type Solver interface {
	// N returns the system dimension.
	N() int
	// Reset clears all stamped coefficients.
	Reset()
	// Add accumulates v into A[i][j].
	Add(i, j int, v float64)
	// At reports the accumulated A[i][j] (diagnostics and tests).
	At(i, j int) float64
	// Solve factors A and solves A*x = b, writing into x.
	// b is not modified. Returns mat.ErrSingular/spmat.ErrSingular
	// equivalents on numerically singular systems.
	Solve(b, x []float64) error
}

// Factory builds a Solver of dimension n with work charged to fc.
// Engines receive a Factory so simulations pick the backend.
type Factory func(n int, fc *flop.Counter) Solver

// dense adapts mat.Dense + LU to the Solver interface.
type dense struct {
	a    *mat.Dense
	work *mat.Dense
	fc   *flop.Counter
}

// NewDense returns a dense-backend solver; the right default below
// roughly 200 unknowns.
func NewDense(n int, fc *flop.Counter) Solver {
	return &dense{a: mat.NewDense(n, n), work: mat.NewDense(n, n), fc: fc}
}

func (d *dense) N() int                  { return d.a.Rows() }
func (d *dense) Reset()                  { d.a.Zero() }
func (d *dense) Add(i, j int, v float64) { d.a.Add(i, j, v) }
func (d *dense) At(i, j int) float64     { return d.a.At(i, j) }
func (d *dense) Solve(b, x []float64) error {
	d.work.CopyFrom(d.a)
	f, err := mat.FactorInPlace(d.work, d.fc)
	if err != nil {
		return err
	}
	f.Solve(b, x, d.fc)
	return nil
}

// sparse adapts spmat to the Solver interface.
type sparse struct {
	t  *spmat.Triplet
	fc *flop.Counter
}

// NewSparse returns a sparse-backend solver for large circuits.
func NewSparse(n int, fc *flop.Counter) Solver {
	return &sparse{t: spmat.NewTriplet(n, n), fc: fc}
}

func (s *sparse) N() int                  { return s.t.Rows() }
func (s *sparse) Reset()                  { s.t.Zero() }
func (s *sparse) Add(i, j int, v float64) { s.t.Add(i, j, v) }
func (s *sparse) At(i, j int) float64     { return s.t.At(i, j) }
func (s *sparse) Solve(b, x []float64) error {
	f, err := spmat.Factor(s.t, s.fc)
	if err != nil {
		return err
	}
	f.Solve(b, x, s.fc)
	return nil
}

// Auto picks the dense backend for small systems and sparse above the
// crossover measured by BenchmarkSolver (see bench_test.go).
func Auto(n int, fc *flop.Counter) Solver {
	const crossover = 160
	if n <= crossover {
		return NewDense(n, fc)
	}
	return NewSparse(n, fc)
}
