package linsolve

import "nanosim/internal/flop"

// SeqCache caches solvers by factory-call ORDER, not by dimension. Any
// driver that re-runs the same circuit configuration requests solvers
// in an identical sequence (one for a monolithic system, or one per
// tear block — blocks of equal dimension being common), so replaying by
// position lets every call site keep its own compiled stamp pattern and
// symbolic LU across runs, where a dimension-keyed cache would hand two
// same-sized blocks the same solver and thrash both patterns.
//
// Shared by internal/vary's batch workers (cross-trial reuse) and
// internal/serve's deck cache (cross-job reuse). Call Begin before each
// run replays the sequence; a call whose dimension diverges from the
// recorded one gets a fresh uncached solver and marks the cache
// Mismatched, letting the owner decide whether to drop or re-warm it.
type SeqCache struct {
	// Base builds solvers on cache misses (required).
	Base Factory

	sols     []Solver
	cursor   int
	mismatch bool
}

// Begin resets the call cursor before a run replays the sequence.
func (c *SeqCache) Begin() {
	c.cursor = 0
	c.mismatch = false
}

// Factory is the linsolve.Factory to hand to the run's engine.
func (c *SeqCache) Factory(n int, fc *flop.Counter) Solver {
	if !c.mismatch && c.cursor < len(c.sols) {
		if s := c.sols[c.cursor]; s.N() == n {
			c.cursor++
			return s
		}
		c.mismatch = true
		return c.Base(n, fc)
	}
	if !c.mismatch {
		s := c.Base(n, fc)
		c.sols = append(c.sols, s)
		c.cursor++
		return s
	}
	return c.Base(n, fc)
}

// Mismatched reports whether the current run's call sequence diverged
// from the cached one (cleared by Begin).
func (c *SeqCache) Mismatched() bool { return c.mismatch }

// Len returns the number of cached solvers.
func (c *SeqCache) Len() int { return len(c.sols) }

// Solvers exposes the cached solvers in call order (stats collection
// and warm-state bookkeeping; do not mutate the slice).
func (c *SeqCache) Solvers() []Solver { return c.sols }

// Drop discards all cached solvers.
func (c *SeqCache) Drop() {
	c.sols = nil
	c.cursor = 0
	c.mismatch = false
}

// CloneWarm builds a new SeqCache replaying the same call sequence with
// independent solvers: every position whose cached solver carries a
// compiled sparse template (TemplateOf) gets a template clone — born on
// the compiled fast path, sharing the donor's pattern structure and
// symbolic LU read-only — and every other position gets a fresh Base
// solver of the recorded dimension. The return count says how many
// positions were template-cloned; the serve-side warm pool uses it to
// decide whether a pre-warmed checkout is worth keeping (a count of
// zero means the clone is no warmer than a cold factory).
//
// Cloning is cheap: template clones defer all numeric allocation to
// their first factorization (spmat lazy materialization), so CloneWarm
// on an N-block cache costs N small structs, not N factorizations.
// Results are unaffected either way — solvers answer bit-identically
// warm or cold; warmth only moves compile work off the first solve.
func (c *SeqCache) CloneWarm(fc *flop.Counter) (*SeqCache, int) {
	clone := &SeqCache{Base: c.Base}
	if len(c.sols) == 0 {
		return clone, 0
	}
	clone.sols = make([]Solver, len(c.sols))
	warmed := 0
	for i, s := range c.sols {
		if tpl, ok := TemplateOf(s); ok {
			clone.sols[i] = tpl.NewSolver(fc)
			warmed++
			continue
		}
		clone.sols[i] = c.Base(s.N(), fc)
	}
	return clone, warmed
}
