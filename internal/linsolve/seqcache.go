package linsolve

import "nanosim/internal/flop"

// SeqCache caches solvers by factory-call ORDER, not by dimension. Any
// driver that re-runs the same circuit configuration requests solvers
// in an identical sequence (one for a monolithic system, or one per
// tear block — blocks of equal dimension being common), so replaying by
// position lets every call site keep its own compiled stamp pattern and
// symbolic LU across runs, where a dimension-keyed cache would hand two
// same-sized blocks the same solver and thrash both patterns.
//
// Shared by internal/vary's batch workers (cross-trial reuse) and
// internal/serve's deck cache (cross-job reuse). Call Begin before each
// run replays the sequence; a call whose dimension diverges from the
// recorded one gets a fresh uncached solver and marks the cache
// Mismatched, letting the owner decide whether to drop or re-warm it.
type SeqCache struct {
	// Base builds solvers on cache misses (required).
	Base Factory

	sols     []Solver
	cursor   int
	mismatch bool
}

// Begin resets the call cursor before a run replays the sequence.
func (c *SeqCache) Begin() {
	c.cursor = 0
	c.mismatch = false
}

// Factory is the linsolve.Factory to hand to the run's engine.
func (c *SeqCache) Factory(n int, fc *flop.Counter) Solver {
	if !c.mismatch && c.cursor < len(c.sols) {
		if s := c.sols[c.cursor]; s.N() == n {
			c.cursor++
			return s
		}
		c.mismatch = true
		return c.Base(n, fc)
	}
	if !c.mismatch {
		s := c.Base(n, fc)
		c.sols = append(c.sols, s)
		c.cursor++
		return s
	}
	return c.Base(n, fc)
}

// Mismatched reports whether the current run's call sequence diverged
// from the cached one (cleared by Begin).
func (c *SeqCache) Mismatched() bool { return c.mismatch }

// Len returns the number of cached solvers.
func (c *SeqCache) Len() int { return len(c.sols) }

// Solvers exposes the cached solvers in call order (stats collection
// and warm-state bookkeeping; do not mutate the slice).
func (c *SeqCache) Solvers() []Solver { return c.sols }

// Drop discards all cached solvers.
func (c *SeqCache) Drop() {
	c.sols = nil
	c.cursor = 0
	c.mismatch = false
}
