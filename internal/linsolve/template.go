package linsolve

import (
	"nanosim/internal/flop"
	"nanosim/internal/spmat"
)

// SparseTemplate captures everything about a sparse solver that depends
// only on the stamp SEQUENCE, not on any particular matrix values: the
// recorded Add-coordinate sequence, the compiled pattern structure, the
// per-position slot table, and a symbolic LU (pivot order + fill + reuse
// program). Solvers cloned from a template start life on the compiled
// fast path — their first assembly is already positional array writes and
// their first Solve is a numeric-only refactorization — so a deck with N
// instances of one subcircuit master pays pattern compilation and
// symbolic analysis once, not N times.
//
// Determinism contract: a template is a pure function of (n, seq). The
// symbolic factorization runs on a synthetic matrix derived from the
// pattern structure alone (see synthVal), never on an instance's values,
// so two solvers warmed from templates built over identical sequences are
// indistinguishable — the bit-identity guarantee the hierarchical compile
// path (internal/hier) owes the flat reference path.
type SparseTemplate struct {
	n     int
	seq   []int64
	pat   *spmat.Pattern // structure donor; values hold the synthetic factor input
	slots []int32
	lu    *spmat.LU // symbolic donor; nil when the synthetic factorization failed
}

// synthVal is the synthetic matrix entry for structural position (i, j):
// structurally diagonally dominant with deterministically "random"
// off-diagonals so that patterns without literal diagonal entries (MNA
// branch-current rows) still factor generically. The mix is splitmix64's
// finalizer over the packed coordinate.
func synthVal(i, j int) float64 {
	if i == j {
		return 4
	}
	h := uint64(spmat.Key(i, j)) * 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return -0.25 - float64(h%1024)/2048 // in [-0.75, -0.25)
}

// NewSparseTemplate records the Add-coordinate sequence that assemble
// produces (values passed to add are ignored), compiles it, and performs
// the one-time symbolic analysis on the synthetic matrix. assemble must
// call add in exactly the order the real engine will stamp; a cloned
// solver that later observes a different order falls back to recording
// mode per the normal divergence path.
func NewSparseTemplate(n int, assemble func(add func(i, j int, v float64))) *SparseTemplate {
	var seq []int64
	assemble(func(i, j int, v float64) { seq = append(seq, spmat.Key(i, j)) })
	pat, slots := spmat.CompilePattern(n, seq)
	for _, key := range seq {
		i, j := int(key>>32), int(key&0xffffffff)
		pat.SetAt(i, j, synthVal(i, j))
	}
	t := &SparseTemplate{n: n, seq: seq, pat: pat, slots: slots}
	if lu, err := spmat.FactorPattern(pat, nil); err == nil {
		lu.PrepareReuse()
		t.lu = lu
	}
	// A failed synthetic factorization leaves lu nil: clones still share
	// the compiled pattern and full-factor on their real values at first
	// Solve — deterministically, since the fallback depends only on the
	// instance's own assembly.
	return t
}

// N returns the template's system dimension.
func (t *SparseTemplate) N() int { return t.n }

// NNZ returns the structural nonzero count of the compiled pattern.
func (t *SparseTemplate) NNZ() int { return t.pat.NNZ() }

// SeqLen returns the recorded stamp-sequence length.
func (t *SparseTemplate) SeqLen() int { return len(t.seq) }

// Warmed reports whether the symbolic LU is available for cloning (the
// synthetic factorization succeeded).
func (t *SparseTemplate) Warmed() bool { return t.lu != nil }

// Warmer is implemented by backends that can bring their factorization
// in sync with the currently assembled matrix outside a Solve. The
// deck-compile path (core.CompileTransient, internal/hier) stamps each
// block's first assembly and calls Warm so first-solve costs — pattern
// compilation, symbolic analysis, factorization — are paid at compile
// time. Warm does not count into SolveStats: compile work must not skew
// the run's amortization accounting, and solvers warmed directly must
// report identical stats to solvers cloned from a template.
type Warmer interface {
	Warm() error
}

// Warm implements Warmer: it compiles and factors the currently
// assembled matrix exactly as the next Solve would, without solving.
func (s *sparseOf[T]) Warm() error {
	saved := s.stats
	err := s.ensureFactored()
	s.stats = saved
	return err
}

// TemplateOf extracts a SparseTemplate from a warmed sparse solver,
// sharing its recorded sequence, compiled pattern structure, slot table
// and (when prepared) symbolic LU. It reports false when s is not a
// compiled real-valued sparse solver. The donor solver remains usable:
// clones share only read-only structure, and the donor's own divergence
// path copies-on-write (see decompile).
func TemplateOf(s Solver) (*SparseTemplate, bool) {
	sp, ok := s.(*sparseOf[float64])
	if !ok || sp.pat == nil {
		return nil, false
	}
	t := &SparseTemplate{n: sp.n, seq: sp.seq, pat: sp.pat, slots: sp.slots}
	if sp.lu != nil && sp.lu.Prepared() {
		t.lu = sp.lu
	}
	return t, true
}

// NewSolver clones a ready-to-stamp solver from the template. The clone
// shares the template's sequence, slot table, pattern structure and LU
// symbolic program read-only, and owns all numeric state; clones are
// independent and may be used concurrently.
func (t *SparseTemplate) NewSolver(fc *flop.Counter) Solver {
	s := &sparseOf[float64]{
		n:     t.n,
		fc:    fc,
		seq:   t.seq,
		pat:   t.pat.CloneStructure(),
		slots: t.slots,
		dirty: true,
	}
	if t.lu != nil {
		s.lu = t.lu.CloneSkeleton()
	}
	return s
}
