package linsolve

import (
	"math"
	"math/rand"
	"testing"

	"nanosim/internal/spmat"
)

// circuitShape is a randomly generated MNA-like stamping plan: a set of
// two-terminal "devices" between node rows (or ground), plus source-style
// incidence pairs. The pattern is fixed; per-cycle conductance values
// vary. This mirrors how every engine drives a Solver.
type circuitShape struct {
	n       int
	devA    []int // -1 means ground
	devB    []int
	srcRow  []int // incidence rows: A[node][branch] = ±1
	srcNode []int
}

func randShape(rng *rand.Rand, nodes, branches int) circuitShape {
	s := circuitShape{n: nodes + branches}
	devs := nodes * 2
	for d := 0; d < devs; d++ {
		a := rng.Intn(nodes+1) - 1 // allow ground
		b := rng.Intn(nodes+1) - 1
		if a == b {
			b = -1
			if a == -1 {
				a = rng.Intn(nodes)
			}
		}
		s.devA = append(s.devA, a)
		s.devB = append(s.devB, b)
	}
	for k := 0; k < branches; k++ {
		s.srcRow = append(s.srcRow, nodes+k)
		s.srcNode = append(s.srcNode, rng.Intn(nodes))
	}
	return s
}

// stamp assembles the shape with the given per-device conductances. A
// fixed backbone leak on every row keeps diagonals bounded away from the
// Gmin floor, like the C/h companions of a real transient system.
func (s circuitShape) stamp(sol Solver, g []float64, gmin, backbone float64) {
	sol.Reset()
	for i := 0; i < s.n; i++ {
		sol.Add(i, i, gmin)
		sol.Add(i, i, backbone)
	}
	for d := range s.devA {
		ia, ib, gd := s.devA[d], s.devB[d], g[d]
		if ia >= 0 {
			sol.Add(ia, ia, gd)
		}
		if ib >= 0 {
			sol.Add(ib, ib, gd)
		}
		if ia >= 0 && ib >= 0 {
			sol.Add(ia, ib, -gd)
			sol.Add(ib, ia, -gd)
		}
	}
	for k := range s.srcRow {
		sol.Add(s.srcNode[k], s.srcRow[k], 1)
		sol.Add(s.srcRow[k], s.srcNode[k], 1)
	}
}

// TestSolverEquivalenceProperty stamps random circuit-shaped systems and
// checks that dense LU, a fresh sparse LU per cycle, and the
// pattern-reusing sparse solver agree across repeated
// Reset → restamp → Solve cycles with pattern-stable value changes.
func TestSolverEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	totalRefactors, totalReuseCycles := 0, 0
	for trial := 0; trial < 25; trial++ {
		nodes := 3 + rng.Intn(30)
		branches := rng.Intn(3)
		shape := randShape(rng, nodes, branches)
		n := shape.n

		dn := NewDense(n, nil)
		reused := NewSparse(n, nil)
		g := make([]float64, len(shape.devA))
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		xd := make([]float64, n)
		xf := make([]float64, n)
		xr := make([]float64, n)

		const cycles = 6
		for cyc := 0; cyc < cycles; cyc++ {
			for d := range g {
				// Conductances over several decades, like Geq across an
				// I-V curve; occasionally exactly zero (device cut off)
				// to exercise structural-zero slots.
				g[d] = math.Pow(10, -4+6*rng.Float64())
				if rng.Intn(10) == 0 {
					g[d] = 0
				}
			}
			fresh := NewSparse(n, nil) // never reuses anything
			shape.stamp(dn, g, 1e-9, 1e-3)
			shape.stamp(fresh, g, 1e-9, 1e-3)
			shape.stamp(reused, g, 1e-9, 1e-3)
			if err := dn.Solve(rhs, xd); err != nil {
				t.Fatalf("trial %d cycle %d: dense: %v", trial, cyc, err)
			}
			if err := fresh.Solve(rhs, xf); err != nil {
				t.Fatalf("trial %d cycle %d: fresh sparse: %v", trial, cyc, err)
			}
			if err := reused.Solve(rhs, xr); err != nil {
				t.Fatalf("trial %d cycle %d: reused sparse: %v", trial, cyc, err)
			}
			scale := 0.0
			for i := range xd {
				if a := math.Abs(xd[i]); a > scale {
					scale = a
				}
			}
			tol := 1e-8 * math.Max(scale, 1)
			for i := range xd {
				if math.Abs(xd[i]-xf[i]) > tol {
					t.Fatalf("trial %d cycle %d: dense vs fresh sparse differ at %d: %g vs %g",
						trial, cyc, i, xd[i], xf[i])
				}
				if math.Abs(xd[i]-xr[i]) > tol {
					t.Fatalf("trial %d cycle %d: dense vs reused sparse differ at %d: %g vs %g",
						trial, cyc, i, xd[i], xr[i])
				}
			}
		}
		st := reused.(Refactorable).SolveStats()
		if st.PatternRebuild != 0 {
			t.Fatalf("trial %d: stable stamp order must not rebuild the pattern: %+v", trial, st)
		}
		totalRefactors += st.NumericRefactor
		totalReuseCycles += cycles - 1
	}
	// A reused pivot may legitimately drift (a device conductance hitting
	// exactly zero reshapes the numerics), so individual cycles may fall
	// back — but across the run the numeric-refactor path must dominate.
	if totalRefactors*2 < totalReuseCycles {
		t.Fatalf("pattern reuse engaged on only %d of %d eligible cycles", totalRefactors, totalReuseCycles)
	}
}

// TestSolverPivotFallback drives a pattern-stable value change that
// invalidates the reused pivot order: the entry the first factorization
// pivoted on collapses to (near) zero while the matrix stays nonsingular.
// The solver must detect the drift, redo the full factorization, and
// still produce the right answer.
func TestSolverPivotFallback(t *testing.T) {
	// 2x2: A = [[a, 1], [1, 0]]. With a=5 the (0,0) entry is a valid
	// pivot; with a=0 it is not, but the matrix stays well-conditioned
	// (det = -1). The (1,1) slot is stamped as a structural zero so the
	// pattern covers every entry either factorization needs.
	s := NewSparse(2, nil)
	build := func(a float64) {
		s.Reset()
		s.Add(0, 0, a)
		s.Add(0, 1, 1)
		s.Add(1, 0, 1)
		s.Add(1, 1, 0)
	}
	rhs := []float64{3, 2}
	x := make([]float64, 2)

	build(5)
	if err := s.Solve(rhs, x); err != nil {
		t.Fatal(err)
	}
	// a=5: x1 = 2, x0+5·2... A·x = [5x0+x1, x0] => x0 = 2, x1 = 3-5·2 = -7.
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-(-7)) > 1e-12 {
		t.Fatalf("warmup solve wrong: %v", x)
	}
	build(0)
	if err := s.Solve(rhs, x); err != nil {
		t.Fatal(err)
	}
	// a=0: x1 = 3, x0 = 2.
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("post-drift solve wrong: %v", x)
	}
	st := s.(Refactorable).SolveStats()
	if st.FullFactor < 2 {
		t.Fatalf("pivot drift did not force a full refactorization: %+v", st)
	}
	if st.PatternRebuild != 0 {
		t.Fatalf("value-only change must not rebuild the pattern: %+v", st)
	}
}

// TestSolverPatternDivergence checks the self-healing path: when the
// stamp sequence changes (a different circuit on the same solver), the
// compiled pattern is re-recorded and results stay correct.
func TestSolverPatternDivergence(t *testing.T) {
	s := NewSparse(3, nil)
	rhs := []float64{1, 2, 3}
	x := make([]float64, 3)

	s.Reset()
	for i := 0; i < 3; i++ {
		s.Add(i, i, 2)
	}
	if err := s.Solve(rhs, x); err != nil {
		t.Fatal(err)
	}
	// Different structure: add off-diagonal coupling.
	s.Reset()
	for i := 0; i < 3; i++ {
		s.Add(i, i, 2)
	}
	s.Add(0, 2, 1)
	if err := s.Solve(rhs, x); err != nil {
		t.Fatal(err)
	}
	if got := s.At(0, 2); got != 1 {
		t.Fatalf("At(0,2) = %g after divergence, want 1", got)
	}
	want0 := (1.0 - 1.0*1.5) / 2 // x2 = 1.5, row0: 2·x0 + x2 = 1
	if math.Abs(x[0]-want0) > 1e-12 || math.Abs(x[2]-1.5) > 1e-12 {
		t.Fatalf("post-divergence solve wrong: %v", x)
	}
	st := s.(Refactorable).SolveStats()
	if st.PatternRebuild != 1 {
		t.Fatalf("expected exactly one pattern rebuild, got %+v", st)
	}
}

// TestSolverSteadyStateAllocs asserts the headline property: once the
// pattern is compiled, a full Reset → restamp → Solve cycle performs zero
// allocations on both backends.
func TestSolverSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shape := randShape(rng, 40, 2)
	g := make([]float64, len(shape.devA))
	for d := range g {
		g[d] = 1e-3 * float64(d+1)
	}
	rhs := make([]float64, shape.n)
	rhs[0] = 1
	x := make([]float64, shape.n)

	for _, tc := range []struct {
		name string
		sol  Solver
	}{
		{"sparse", NewSparse(shape.n, nil)},
		{"dense", NewDense(shape.n, nil)},
	} {
		// Warm up: compile pattern + symbolic analysis.
		shape.stamp(tc.sol, g, 1e-9, 1e-3)
		if err := tc.sol.Solve(rhs, x); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			for d := range g {
				g[d] += 1e-6
			}
			shape.stamp(tc.sol, g, 1e-9, 1e-3)
			if err := tc.sol.Solve(rhs, x); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state cycle allocates %.1f times, want 0", tc.name, allocs)
		}
	}
}

// TestRefactorMatchesFullFactor cross-checks RefactorNumeric against a
// from-scratch factorization at the spmat level across many random
// pattern-stable value sets.
func TestRefactorMatchesFullFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		var seq []int64
		for i := 0; i < n; i++ {
			seq = append(seq, spmat.Key(i, i))
			if i > 0 {
				seq = append(seq, spmat.Key(i, i-1), spmat.Key(i-1, i))
			}
			if rng.Intn(3) == 0 {
				seq = append(seq, spmat.Key(i, rng.Intn(n)))
			}
		}
		pat, slots := spmat.CompilePattern(n, seq)
		fill := func() {
			pat.Zero()
			for k := range seq {
				i := int(seq[k] >> 32)
				j := int(seq[k] & 0xffffffff)
				v := rng.NormFloat64()
				if i == j {
					v = 4 + rng.Float64() // diagonally dominant
				}
				pat.AddSlot(slots[k], v)
			}
		}
		fill()
		lu, err := spmat.FactorPattern(pat, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lu.PrepareReuse()
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xRef := make([]float64, n)
		xNew := make([]float64, n)
		for cyc := 0; cyc < 4; cyc++ {
			fill()
			if err := lu.RefactorNumeric(pat, nil); err != nil {
				t.Fatalf("trial %d cycle %d: refactor: %v", trial, cyc, err)
			}
			lu.Solve(b, xNew, nil)
			ref, err := spmat.FactorPattern(pat, nil)
			if err != nil {
				t.Fatalf("trial %d cycle %d: full: %v", trial, cyc, err)
			}
			ref.Solve(b, xRef, nil)
			for i := range xRef {
				if math.Abs(xRef[i]-xNew[i]) > 1e-9*(1+math.Abs(xRef[i])) {
					t.Fatalf("trial %d cycle %d: refactor diverges at %d: %g vs %g",
						trial, cyc, i, xNew[i], xRef[i])
				}
			}
		}
	}
}
