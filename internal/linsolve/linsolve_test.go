package linsolve

import (
	"math"
	"math/rand"
	"testing"

	"nanosim/internal/flop"
)

// buildAndSolve exercises one Solver implementation on a random
// diagonally dominant system and verifies the residual.
func buildAndSolve(t *testing.T, s Solver, seed int64) {
	t.Helper()
	n := s.N()
	r := rand.New(rand.NewSource(seed))
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.4 {
				v := r.NormFloat64()
				a[i][j] = v
				s.Add(i, j, v)
				sum += math.Abs(v)
			}
		}
		a[i][i] = sum + 1
		s.Add(i, i, sum+1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	if err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		res := -b[i]
		for j := 0; j < n; j++ {
			res += a[i][j] * x[j]
		}
		if math.Abs(res) > 1e-9 {
			t.Fatalf("residual[%d] = %g", i, res)
		}
	}
}

func TestDenseBackend(t *testing.T) {
	var fc flop.Counter
	buildAndSolve(t, NewDense(12, &fc), 1)
	if fc.Total() == 0 {
		t.Error("dense backend did not charge flops")
	}
}

func TestSparseBackend(t *testing.T) {
	var fc flop.Counter
	buildAndSolve(t, NewSparse(12, &fc), 2)
	if fc.Total() == 0 {
		t.Error("sparse backend did not charge flops")
	}
}

func TestBackendsAgree(t *testing.T) {
	n := 10
	d := NewDense(n, nil)
	sp := NewSparse(n, nil)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.5 {
				v := r.NormFloat64()
				d.Add(i, j, v)
				sp.Add(i, j, v)
				sum += math.Abs(v)
			}
		}
		d.Add(i, i, sum+2)
		sp.Add(i, i, sum+2)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	xd := make([]float64, n)
	xs := make([]float64, n)
	if err := d.Solve(b, xd); err != nil {
		t.Fatal(err)
	}
	if err := sp.Solve(b, xs); err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if math.Abs(xd[i]-xs[i]) > 1e-9*(1+math.Abs(xd[i])) {
			t.Errorf("x[%d]: dense %g vs sparse %g", i, xd[i], xs[i])
		}
	}
}

func TestResetClears(t *testing.T) {
	for name, f := range map[string]Factory{"dense": NewDense, "sparse": NewSparse} {
		s := f(3, nil)
		s.Add(0, 0, 5)
		s.Reset()
		if s.At(0, 0) != 0 {
			t.Errorf("%s: Reset did not clear", name)
		}
	}
}

func TestSingularReported(t *testing.T) {
	for name, f := range map[string]Factory{"dense": NewDense, "sparse": NewSparse} {
		s := f(2, nil)
		s.Add(0, 0, 1) // row 1 left empty -> singular
		x := make([]float64, 2)
		if err := s.Solve([]float64{1, 1}, x); err == nil {
			t.Errorf("%s: singular system not reported", name)
		}
	}
}

func TestAuto(t *testing.T) {
	small := Auto(AutoCrossover, nil)
	if _, ok := small.(*dense); !ok {
		t.Errorf("Auto(%d) should pick dense", AutoCrossover)
	}
	big := Auto(AutoCrossover+1, nil)
	if _, ok := big.(*sparseOf[float64]); !ok {
		t.Errorf("Auto(%d) should pick sparse", AutoCrossover+1)
	}
}
