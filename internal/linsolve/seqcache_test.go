package linsolve

import (
	"math"
	"math/rand"
	"testing"
)

// solveSeeded stamps a seeded random diagonally dominant system into s
// and returns the solution, so the same seed on two solvers must give
// bit-identical answers when they share a symbolic program.
func solveSeeded(t *testing.T, s Solver, seed int64) []float64 {
	t.Helper()
	n := s.N()
	r := rand.New(rand.NewSource(seed))
	s.Reset()
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j && r.Float64() < 0.4 {
				v := r.NormFloat64()
				s.Add(i, j, v)
				sum += math.Abs(v)
			}
		}
		s.Add(i, i, sum+1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	if err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	return x
}

// TestSeqCacheCloneWarm checks the warm-pool cloning path: positions
// carrying a compiled sparse template clone warm (no pattern rebuild,
// no full factorization, bit-identical answers), positions that cannot
// template (dense) fall back to fresh Base solvers, and the clone is
// independent of its donor.
func TestSeqCacheCloneWarm(t *testing.T) {
	c := &SeqCache{Base: Auto}

	if empty, warmed := c.CloneWarm(nil); empty.Len() != 0 || warmed != 0 {
		t.Fatalf("empty cache: clone len %d warmed %d, want 0/0", empty.Len(), warmed)
	}

	// Warm two positions: sparse above the crossover, dense below it.
	c.Begin()
	s1 := c.Factory(12, nil)
	s2 := c.Factory(4, nil)
	x1 := solveSeeded(t, s1, 3)
	x2 := solveSeeded(t, s2, 4)

	clone, warmed := c.CloneWarm(nil)
	if warmed != 1 {
		t.Fatalf("warmed %d positions, want 1 (the sparse one)", warmed)
	}
	if clone.Len() != c.Len() {
		t.Fatalf("clone len %d, donor len %d", clone.Len(), c.Len())
	}

	clone.Begin()
	cs1 := clone.Factory(12, nil)
	cs2 := clone.Factory(4, nil)
	if clone.Mismatched() {
		t.Fatal("clone mismatched while replaying the donor's sequence")
	}
	y1 := solveSeeded(t, cs1, 3)
	y2 := solveSeeded(t, cs2, 4)
	for i := range x1 {
		if y1[i] != x1[i] {
			t.Fatalf("sparse clone diverges at row %d: %g vs %g", i, y1[i], x1[i])
		}
	}
	for i := range x2 {
		if y2[i] != x2[i] {
			t.Fatalf("dense fallback diverges at row %d: %g vs %g", i, y2[i], x2[i])
		}
	}

	// The cloned sparse solver must have ridden the donor's compiled
	// pattern and symbolic LU: numeric refactorization only.
	r, ok := cs1.(Refactorable)
	if !ok || !CarriesPivotOrder(cs1) {
		t.Fatalf("clone position 0 is not a compiled sparse solver: %T", cs1)
	}
	st := r.SolveStats()
	if st.PatternRebuild != 0 || st.FullFactor != 0 {
		t.Fatalf("clone rebuilt state: %+v (want warm: 0 rebuilds, 0 full factors)", st)
	}

	// Independence: pushing the clone onto a different system must not
	// disturb the donor's answers.
	solveSeeded(t, cs1, 99)
	if z := solveSeeded(t, s1, 3); z[0] != x1[0] {
		t.Fatalf("donor answer changed after clone diverged: %g vs %g", z[0], x1[0])
	}
}
