package sde

import (
	"math"
	"testing"

	"nanosim/internal/circuit"
	"nanosim/internal/core"
	"nanosim/internal/device"
	"nanosim/internal/randx"
	"nanosim/internal/stats"
)

// TestItoVsStratonovich is paper §4.2's central demonstration: the two
// Riemann-sum placements converge to answers differing by T/2, however
// fine the grid.
func TestItoVsStratonovich(t *testing.T) {
	const tEnd = 1.0
	var gap stats.Running
	for p := 0; p < 400; p++ {
		w := randx.NewWiener(randx.Split(3, p), tEnd, 512)
		ito := ItoWdW(w)
		strat := StratonovichWdW(w)
		gap.Push(strat - ito)
		// Per-path identities: midpoint telescopes to W(T)²/2 exactly.
		wT := w.W[w.Steps()]
		if math.Abs(strat-wT*wT/2) > 1e-9 {
			t.Fatalf("midpoint sum != W(T)²/2: %g vs %g", strat, wT*wT/2)
		}
	}
	// E[gap] = T/2; each gap is (ΣΔW²)/2 with std ~ T/√(2N).
	if math.Abs(gap.Mean()-tEnd/2) > 0.02 {
		t.Errorf("mean Ito/Stratonovich gap = %g, want %g", gap.Mean(), tEnd/2)
	}
	// The gap does NOT vanish with refinement.
	w := randx.NewWiener(randx.New(9), tEnd, 4096)
	if d := StratonovichWdW(w) - ItoWdW(w); d < 0.3 {
		t.Errorf("refined gap = %g, should stay near 0.5", d)
	}
}

// TestItoExpectation: E[∫W dW] = 0 under the Itô convention.
func TestItoExpectation(t *testing.T) {
	var r stats.Running
	for p := 0; p < 2000; p++ {
		w := randx.NewWiener(randx.Split(17, p), 1, 64)
		r.Push(ItoWdW(w))
	}
	lo, hi := r.CI95()
	if lo > 0 || hi < 0 {
		t.Errorf("E[Ito ∫WdW] CI [%g, %g] excludes 0", lo, hi)
	}
}

// TestGBMStrongOrder measures EM's strong convergence order on GBM;
// the theoretical order is 1/2 (Higham, paper ref [13]).
func TestGBMStrongOrder(t *testing.T) {
	g := GBM{Lambda: 2, Sigma: 1, X0: 1}
	strides := []int{1, 2, 4, 8, 16}
	errs, err := StrongError(g, 1, 512, 400, strides, 11)
	if err != nil {
		t.Fatal(err)
	}
	var lh, le []float64
	for i, st := range strides {
		lh = append(lh, math.Log(float64(st)))
		le = append(le, math.Log(errs[i]))
	}
	slope, _, err := stats.LinearFit(lh, le)
	if err != nil {
		t.Fatal(err)
	}
	if slope < 0.3 || slope > 0.7 {
		t.Errorf("strong order = %.2f, want ~0.5", slope)
	}
}

// TestOUMomentsViaEM: EM on the OU process reproduces the analytic mean
// and variance within Monte Carlo error.
func TestOUMomentsViaEM(t *testing.T) {
	o := OU{A: 2, Mu: 0, Sigma: 0.5, X0: 1}
	const tEnd = 1.0
	var endVals stats.Running
	for p := 0; p < 3000; p++ {
		w := randx.NewWiener(randx.Split(23, p), tEnd, 256)
		xs, err := o.EM(w, 1)
		if err != nil {
			t.Fatal(err)
		}
		endVals.Push(xs[len(xs)-1])
	}
	wantMean := o.Mean(tEnd)
	wantVar := o.Var(tEnd)
	if math.Abs(endVals.Mean()-wantMean) > 4*endVals.StdErr()+0.01 {
		t.Errorf("EM mean %g vs analytic %g", endVals.Mean(), wantMean)
	}
	if math.Abs(endVals.Var()-wantVar)/wantVar > 0.15 {
		t.Errorf("EM variance %g vs analytic %g", endVals.Var(), wantVar)
	}
}

func TestOUExactPathStationary(t *testing.T) {
	// From X0 at the mean with tiny A*t the variance grows like σ²t;
	// long-run it saturates at σ²/2A.
	o := OU{A: 1e9, Mu: 0, Sigma: 1e3, X0: 0}
	ts := []float64{0, 1e-9, 1e-8, 1e-7}
	var r stats.Running
	for p := 0; p < 2000; p++ {
		xs, err := o.ExactPath(randx.Split(5, p), ts)
		if err != nil {
			t.Fatal(err)
		}
		r.Push(xs[len(xs)-1])
	}
	want := o.Sigma * o.Sigma / (2 * o.A) // stationary variance
	if math.Abs(r.Var()-want)/want > 0.15 {
		t.Errorf("stationary variance %g vs %g", r.Var(), want)
	}
	if _, err := o.ExactPath(randx.New(1), []float64{0}); err == nil {
		t.Error("single-time path accepted")
	}
	if _, err := o.ExactPath(randx.New(1), []float64{0, 0}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

// noisyRC builds the Figure 10 substrate: a parasitic RC node driven by
// a noisy current source.
func noisyRC(sigma float64) *circuit.Circuit {
	c := circuit.New("noisy-rc")
	is, _ := c.AddISource("IN", "0", "out", device.DC(0))
	is.NoiseSigma = sigma
	c.AddResistor("R1", "out", "0", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-12)
	return c
}

// TestCircuitEMZeroNoiseMatchesDeterministic: with B = 0 the EM engine
// must reduce to backward Euler (paper §4.2's consistency remark).
func TestCircuitEMZeroNoiseMatchesDeterministic(t *testing.T) {
	c := circuit.New("rc")
	c.AddVSource("V1", "in", "0", device.DC(1))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-9)
	res, err := Transient(c, Options{TStop: 5e-6, Steps: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseSources != 0 {
		t.Fatal("unexpected noise sources")
	}
	det, err := core.Transient(c, core.Options{TStop: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Waves.Get("v(out)")
	b := det.Waves.Get("v(out)")
	for _, ts := range []float64{1e-6, 3e-6, 5e-6} {
		if d := math.Abs(a.At(ts) - b.At(ts)); d > 0.01 {
			t.Errorf("EM vs SWEC at %g differ by %g", ts, d)
		}
	}
}

// TestCircuitEMStationaryVariance: the noisy RC node is an OU process
// with A = 1/RC and diffusion σ_i/C; its stationary voltage variance is
// σ_i²·R/(2C).
func TestCircuitEMStationaryVariance(t *testing.T) {
	const sigma = 1e-6 // A/√s
	ckt := noisyRC(sigma)
	// tau = 1ns; run 20 tau and sample the second half.
	res, err := Ensemble(ckt, EnsembleOptions{
		Base:   Options{TStop: 20e-9, Steps: 2000, Seed: 77},
		Paths:  300,
		Signal: "v(out)",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := sigma * sigma * 1e3 / (2 * 1e-12) // σ²R/2C
	// Average the pointwise variance over the settled half.
	var avg stats.Running
	for j := res.Std.Len() / 2; j < res.Std.Len(); j++ {
		avg.Push(res.Std.V[j] * res.Std.V[j])
	}
	got := avg.Mean()
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("stationary variance %g vs analytic %g", got, want)
	}
}

// TestExplicitMatchesImplicit on a well-conditioned all-C circuit.
func TestExplicitMatchesImplicit(t *testing.T) {
	ckt := noisyRC(0) // deterministic for exact comparison
	exp, err := Transient(ckt, Options{TStop: 5e-9, Steps: 5000, Seed: 3, Explicit: true,
		IC: map[string]float64{"out": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := Transient(ckt, Options{TStop: 5e-9, Steps: 5000, Seed: 3,
		IC: map[string]float64{"out": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	a := exp.Waves.Get("v(out)")
	b := imp.Waves.Get("v(out)")
	if d := math.Abs(a.At(3e-9) - b.At(3e-9)); d > 0.01 {
		t.Errorf("explicit vs implicit differ by %g", d)
	}
}

func TestExplicitRejectsVsourceAndInductor(t *testing.T) {
	c := circuit.New("v")
	c.AddVSource("V1", "in", "0", device.DC(1))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-12)
	if _, err := Transient(c, Options{TStop: 1e-9, Explicit: true}); err == nil {
		t.Error("explicit EM accepted a voltage source")
	}
	l := circuit.New("l")
	l.AddISource("I1", "0", "a", device.DC(1e-3))
	l.AddInductor("L1", "a", "0", 1e-9)
	l.AddCapacitor("C1", "a", "0", 1e-12)
	if _, err := Transient(l, Options{TStop: 1e-9, Explicit: true}); err == nil {
		t.Error("explicit EM accepted an inductor")
	}
	// Missing node capacitance -> singular C.
	m := circuit.New("m")
	m.AddISource("I1", "0", "a", device.DC(1e-3))
	m.AddResistor("R1", "a", "b", 1e3)
	m.AddResistor("R2", "b", "0", 1e3)
	m.AddCapacitor("C1", "a", "0", 1e-12)
	if _, err := Transient(m, Options{TStop: 1e-9, Explicit: true}); err == nil {
		t.Error("explicit EM accepted singular C")
	}
}

func TestReflectionPrinciple(t *testing.T) {
	const tEnd = 1.0
	maxes := MCRunningMax(31, tEnd, 512, 4000)
	for _, m := range []float64{0.5, 1.0, 1.5} {
		want := BMExceedProb(m, tEnd)
		hits := 0
		for _, v := range maxes {
			if v > m {
				hits++
			}
		}
		got := float64(hits) / float64(len(maxes))
		// Grid-resolved maxima slightly undercount; allow one-sided slack.
		if got > want+0.03 || got < want-0.06 {
			t.Errorf("P(max > %g) = %g, analytic %g", m, got, want)
		}
	}
	// E[max] = sqrt(2T/pi).
	if m := stats.Mean(maxes); math.Abs(m-BMExpectedMax(tEnd)) > 0.05 {
		t.Errorf("E[max] = %g, want %g", m, BMExpectedMax(tEnd))
	}
	if BMExceedProb(-1, 1) != 1 || BMExceedProb(1, 0) != 0 {
		t.Error("edge cases wrong")
	}
}

func TestEnsemblePeakHelpers(t *testing.T) {
	ckt := noisyRC(1e-6)
	res, err := Ensemble(ckt, EnsembleOptions{
		Base:  Options{TStop: 5e-9, Steps: 500, Seed: 13},
		Paths: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != 100 || len(res.PeakValues) != 100 {
		t.Fatalf("ensemble bookkeeping wrong: %d/%d", res.Paths, len(res.PeakValues))
	}
	q90, err := res.PeakQuantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	q50, err := res.PeakQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q90 < q50 {
		t.Error("quantiles out of order")
	}
	p, se := res.PeakExceedProb(q50)
	if p < 0.3 || p > 0.7 {
		t.Errorf("P(peak > median) = %g, want ~0.5", p)
	}
	if se <= 0 {
		t.Error("stderr should be positive")
	}
}

func TestOUExceedProbMC(t *testing.T) {
	o := OU{A: 1e9, Mu: 0, Sigma: 1e3, X0: 0}
	// Stationary std = sigma/sqrt(2A) ~ 0.0224; exceeding 0 is certain.
	if p := OUExceedProbMC(o, 10e-9, 200, 200, -1, 7); p != 1 {
		t.Errorf("P(max > -1) = %g, want 1", p)
	}
	p := OUExceedProbMC(o, 10e-9, 200, 400, 0.02, 7)
	if p <= 0.05 || p >= 1 {
		t.Errorf("P(max > 1sigma) = %g, implausible", p)
	}
}

func TestTransientValidation(t *testing.T) {
	ckt := noisyRC(1e-6)
	if _, err := Transient(ckt, Options{}); err == nil {
		t.Error("TStop=0 accepted")
	}
	bad := circuit.New("bad")
	bad.AddResistor("R1", "a", "b", 1)
	if _, err := Transient(bad, Options{TStop: 1}); err == nil {
		t.Error("invalid circuit accepted")
	}
	if _, err := Transient(ckt, Options{TStop: 1e-9, IC: map[string]float64{"zz": 1}}); err == nil {
		t.Error("unknown IC accepted")
	}
}

func TestSeedReproducibility(t *testing.T) {
	ckt := noisyRC(1e-6)
	a, err := Transient(ckt, Options{TStop: 2e-9, Steps: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transient(ckt, Options{TStop: 2e-9, Steps: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Transient(ckt, Options{TStop: 2e-9, Steps: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	sa := a.Waves.Get("v(out)")
	sb := b.Waves.Get("v(out)")
	scc := c.Waves.Get("v(out)")
	same, diff := true, false
	for j := 0; j < sa.Len(); j++ {
		if sa.V[j] != sb.V[j] {
			same = false
		}
		if sa.V[j] != scc.V[j] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed produced different paths")
	}
	if !diff {
		t.Error("different seeds produced identical paths")
	}
}

// TestExplicitSameSeedBitIdentical guards the Options contract that the
// same seed reproduces the same path exactly: the explicit-mode drift
// product must use a deterministic summation order (the compiled
// gStamper pattern), not map iteration.
func TestExplicitSameSeedBitIdentical(t *testing.T) {
	ckt := circuit.New("det")
	is, _ := ckt.AddISource("IN", "0", "x", device.DC(50e-6))
	is.NoiseSigma = 8e-10
	ckt.AddResistor("R1", "x", "0", 1e3)
	ckt.AddCapacitor("C1", "x", "0", 1e-12)
	run := func() []float64 {
		res, err := Transient(ckt, Options{TStop: 1e-9, Steps: 300, Seed: 42, Explicit: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed explicit paths differ at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
