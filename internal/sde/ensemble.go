package sde

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"nanosim/internal/circuit"
	"nanosim/internal/stats"
	"nanosim/internal/wave"
)

// EnsembleOptions configures a Monte Carlo ensemble of EM paths.
type EnsembleOptions struct {
	// Base configures each path; Base.Seed seeds path 0 and subsequent
	// paths derive independent streams.
	Base Options
	// Paths is the ensemble size (default 200).
	Paths int
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Signal selects the recorded series analyzed for the summary
	// (default: the first node voltage series).
	Signal string
	// StatsFrom is the fraction of the window after which per-path
	// extrema (PeakValues/MinValues) are measured, so start-up
	// transients don't dominate them (default 0: whole window).
	StatsFrom float64
}

// EnsembleResult summarizes a Monte Carlo run.
type EnsembleResult struct {
	// Mean, Std, Lo95 and Hi95 are pointwise summary series of the
	// selected signal over the shared EM grid.
	Mean, Std, Lo95, Hi95 *wave.Series
	// PeakValues holds each path's maximum of the signal over the run;
	// PeakTimes the corresponding times. Peak prediction (paper §4.2,
	// Black-Scholes analogy) reads quantiles off these.
	PeakValues, PeakTimes []float64
	// MinValues holds each path's minimum (the voltage-drop side of the
	// same window analysis, used by the power-grid workloads).
	MinValues []float64
	// Final collects each path's endpoint value.
	Final []float64
	// Paths is the number of paths actually run.
	Paths int
}

// Ensemble runs paths independent EM simulations of ckt and aggregates
// the selected signal. Paths are deterministic functions of (Base.Seed,
// path index), so results are reproducible at any parallelism.
func Ensemble(ckt *circuit.Circuit, opt EnsembleOptions) (*EnsembleResult, error) {
	if opt.Paths <= 0 {
		opt.Paths = 200
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	base, err := opt.Base.withDefaults()
	if err != nil {
		return nil, err
	}
	// Probe one path to learn the grid and default signal.
	probe, err := Transient(ckt, withSeed(base, base.Seed))
	if err != nil {
		return nil, err
	}
	signal := opt.Signal
	if signal == "" {
		names := probe.Waves.Names()
		if len(names) == 0 {
			return nil, fmt.Errorf("sde: circuit records no signals")
		}
		signal = names[0]
	}
	ref := probe.Waves.Get(signal)
	if ref == nil {
		return nil, fmt.Errorf("sde: no signal %q in ensemble output", signal)
	}
	nT := ref.Len()

	type pathOut struct {
		vals  []float64
		peakV float64
		peakT float64
		minV  float64
	}
	outs := make([]pathOut, opt.Paths)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	errCh := make(chan error, opt.Paths)
	for p := 0; p < opt.Paths; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Derive an independent seed per path.
			res, err := Transient(ckt, withSeed(base, base.Seed^(0x9e3779b97f4a7c15*uint64(p+1))))
			if err != nil {
				errCh <- fmt.Errorf("sde: path %d: %w", p, err)
				return
			}
			s := res.Waves.Get(signal)
			vals := append([]float64(nil), s.V...)
			from := 0
			if opt.StatsFrom > 0 && opt.StatsFrom < 1 {
				from = int(opt.StatsFrom * float64(len(vals)))
			}
			vMin, vMax := vals[from], vals[from]
			tMax := s.T[from]
			for i := from; i < len(vals); i++ {
				if vals[i] > vMax {
					vMax, tMax = vals[i], s.T[i]
				}
				if vals[i] < vMin {
					vMin = vals[i]
				}
			}
			outs[p] = pathOut{vals: vals, peakV: vMax, peakT: tMax, minV: vMin}
		}(p)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}

	res := &EnsembleResult{
		Mean:  wave.NewSeries(signal+"-mean", nT),
		Std:   wave.NewSeries(signal+"-std", nT),
		Lo95:  wave.NewSeries(signal+"-lo95", nT),
		Hi95:  wave.NewSeries(signal+"-hi95", nT),
		Paths: opt.Paths,
	}
	for j := 0; j < nT; j++ {
		var r stats.Running
		for p := 0; p < opt.Paths; p++ {
			if j < len(outs[p].vals) {
				r.Push(outs[p].vals[j])
			}
		}
		t := ref.T[j]
		m, sd := r.Mean(), r.Std()
		res.Mean.MustAppend(t, m)
		res.Std.MustAppend(t, sd)
		res.Lo95.MustAppend(t, m-1.96*sd)
		res.Hi95.MustAppend(t, m+1.96*sd)
	}
	for p := 0; p < opt.Paths; p++ {
		res.PeakValues = append(res.PeakValues, outs[p].peakV)
		res.PeakTimes = append(res.PeakTimes, outs[p].peakT)
		res.MinValues = append(res.MinValues, outs[p].minV)
		if n := len(outs[p].vals); n > 0 {
			res.Final = append(res.Final, outs[p].vals[n-1])
		}
	}
	return res, nil
}

func withSeed(o Options, seed uint64) Options {
	o.Seed = seed
	return o
}

// PeakQuantile returns the q-quantile of the ensemble's per-path peak
// values: "the peak performance within a certain time window" of paper
// §4.2.
func (r *EnsembleResult) PeakQuantile(q float64) (float64, error) {
	return stats.Quantile(r.PeakValues, q)
}

// PeakExceedProb estimates P(max over window > level) with its binomial
// standard error.
func (r *EnsembleResult) PeakExceedProb(level float64) (p, stderr float64) {
	n := len(r.PeakValues)
	if n == 0 {
		return 0, 0
	}
	k := 0
	for _, v := range r.PeakValues {
		if v > level {
			k++
		}
	}
	p = float64(k) / float64(n)
	stderr = math.Sqrt(p * (1 - p) / float64(n))
	return
}
