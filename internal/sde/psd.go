package sde

import (
	"fmt"
	"math"
)

// PSDWelch estimates the one-sided power spectral density of a uniformly
// sampled signal by Welch's method: Hann-windowed segments with 50%
// overlap, averaged periodograms. The DFT is evaluated directly (the
// segment lengths circuit noise analysis needs are small enough that an
// FFT would be premature). Frequencies run from 0 to the Nyquist rate.
//
// For the noisy RC node of Figure 10 — an Ornstein-Uhlenbeck process —
// the result is the Lorentzian S(f) = 2σ²/(a² + (2πf)²), corner at
// a/2π = 1/(2πRC): the spectral view of the paper's uncertainty model.
func PSDWelch(vals []float64, dt float64, segLen int) (freqs, psd []float64, err error) {
	if dt <= 0 {
		return nil, nil, fmt.Errorf("sde: PSD needs dt > 0, got %g", dt)
	}
	if segLen < 8 || segLen%2 != 0 {
		return nil, nil, fmt.Errorf("sde: PSD segment length %d must be even and >= 8", segLen)
	}
	if len(vals) < segLen {
		return nil, nil, fmt.Errorf("sde: PSD needs >= %d samples, got %d", segLen, len(vals))
	}
	// Hann window and its power normalization.
	win := make([]float64, segLen)
	winPow := 0.0
	for i := range win {
		win[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(segLen-1)))
		winPow += win[i] * win[i]
	}
	nBins := segLen/2 + 1
	acc := make([]float64, nBins)
	segs := 0
	step := segLen / 2
	buf := make([]float64, segLen)
	for start := 0; start+segLen <= len(vals); start += step {
		// Detrend (remove segment mean) and window.
		mean := 0.0
		for i := 0; i < segLen; i++ {
			mean += vals[start+i]
		}
		mean /= float64(segLen)
		for i := 0; i < segLen; i++ {
			buf[i] = (vals[start+i] - mean) * win[i]
		}
		// Direct DFT bins 0..N/2, with an incremental complex rotation
		// instead of per-sample trig calls.
		for k := 0; k < nBins; k++ {
			var re, im float64
			w := -2 * math.Pi * float64(k) / float64(segLen)
			wRe, wIm := math.Cos(w), math.Sin(w)
			cRe, cIm := 1.0, 0.0
			for n := 0; n < segLen; n++ {
				re += buf[n] * cRe
				im += buf[n] * cIm
				cRe, cIm = cRe*wRe-cIm*wIm, cRe*wIm+cIm*wRe
			}
			p := (re*re + im*im) * dt / winPow
			// One-sided: double the interior bins.
			if k != 0 && k != nBins-1 {
				p *= 2
			}
			acc[k] += p
		}
		segs++
	}
	freqs = make([]float64, nBins)
	psd = make([]float64, nBins)
	fs := 1 / dt
	for k := 0; k < nBins; k++ {
		freqs[k] = float64(k) * fs / float64(segLen)
		psd[k] = acc[k] / float64(segs)
	}
	return freqs, psd, nil
}

// OUPSD returns the analytic one-sided PSD of the OU process at
// frequency f: 2σ²/(a² + (2πf)²).
func (o OU) PSD(f float64) float64 {
	w := 2 * math.Pi * f
	return 2 * o.Sigma * o.Sigma / (o.A*o.A + w*w)
}
