package sde

import (
	"math"
	"testing"

	"nanosim/internal/randx"
)

// TestPSDWhiteNoiseFlat: discrete white noise of variance v has a flat
// PSD at v*dt across the band.
func TestPSDWhiteNoiseFlat(t *testing.T) {
	s := randx.New(5)
	const n, dt = 16384, 1e-9
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.Norm() // variance 1
	}
	freqs, psd, err := PSDWelch(vals, dt, 256)
	if err != nil {
		t.Fatal(err)
	}
	// One-sided density: integrating 2·v·dt over [0, fs/2] returns the
	// variance v.
	want := 2 * dt
	// Average the mid-band (skip DC and Nyquist edges).
	sum, cnt := 0.0, 0
	for k := 2; k < len(psd)-2; k++ {
		sum += psd[k]
		cnt++
	}
	got := sum / float64(cnt)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("white PSD level %g, want %g", got, want)
	}
	if freqs[0] != 0 || math.Abs(freqs[len(freqs)-1]-0.5/dt) > 1 {
		t.Errorf("frequency axis wrong: %g..%g", freqs[0], freqs[len(freqs)-1])
	}
}

// TestPSDOfOUMatchesLorentzian: the exact-sampled OU process shows the
// analytic Lorentzian: flat at 2σ²/a² below the corner, rolling off
// ~1/f² above it.
func TestPSDOfOUMatchesLorentzian(t *testing.T) {
	// RC node: tau = 1ns -> a = 1e9, corner ~159 MHz.
	o := OU{A: 1e9, Mu: 0, Sigma: 1e3, X0: 0}
	// Grid: 400 ns at ~49 ps steps -> 10 MHz bins with 2048-point
	// segments, resolving both fc/4 (~40 MHz) and 4*fc (~640 MHz).
	const steps = 8192
	const tEnd = 400e-9
	dt := tEnd / steps
	ts := make([]float64, steps+1)
	for i := range ts {
		ts[i] = dt * float64(i)
	}
	xs, err := o.ExactPath(randx.New(7), ts)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the first 5 tau to reach stationarity.
	skip := int(5e-9 / dt)
	freqs, psd, err := PSDWelch(xs[skip:], dt, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Compare to the analytic curve at a low and a high frequency.
	check := func(fTarget, tolFactor float64) {
		// Average a few bins around the target for variance reduction.
		var got, ana float64
		cnt := 0
		for k := 1; k < len(freqs); k++ {
			if freqs[k] > fTarget*0.7 && freqs[k] < fTarget*1.4 {
				got += psd[k]
				ana += o.PSD(freqs[k])
				cnt++
			}
		}
		if cnt == 0 {
			t.Fatalf("no bins near %g Hz", fTarget)
		}
		got /= float64(cnt)
		ana /= float64(cnt)
		if got/ana > tolFactor || ana/got > tolFactor {
			t.Errorf("PSD at ~%g Hz: %g vs analytic %g", fTarget, got, ana)
		}
	}
	corner := o.A / (2 * math.Pi) // ~159 MHz
	check(corner/4, 2.0)
	check(corner*4, 2.0)
	// Roll-off: the PSD must drop by ~x16 (not ~x1) from fc/4 to 4fc...
	// verified implicitly by both checks matching the Lorentzian.
}

func TestPSDValidation(t *testing.T) {
	if _, _, err := PSDWelch(make([]float64, 100), 0, 16); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, _, err := PSDWelch(make([]float64, 100), 1, 7); err == nil {
		t.Error("odd segment accepted")
	}
	if _, _, err := PSDWelch(make([]float64, 10), 1, 16); err == nil {
		t.Error("short input accepted")
	}
}
