// Package sde implements the paper's §4: transient simulation of
// nanocircuits with uncertain (white-noise) inputs via the
// Euler-Maruyama method, plus the scalar stochastic-calculus toolkit the
// paper builds the exposition on (Itô vs Stratonovich sums, geometric
// Brownian motion with its closed form, the Ornstein-Uhlenbeck process
// with its analytic moments) and Black-Scholes-style peak prediction
// within a time window.
package sde

import (
	"errors"
	"fmt"
	"math"

	"nanosim/internal/randx"
)

// ItoWdW evaluates the left-endpoint (Itô) sum Σ W(t_j)·ΔW_j of paper
// eq (15) over the path — the discretization of ∫W dW whose limit is
// (W(T)² - T)/2.
func ItoWdW(w *randx.Wiener) float64 {
	s := 0.0
	for j := 0; j < w.Steps(); j++ {
		s += w.W[j] * w.Increment(j)
	}
	return s
}

// StratonovichWdW evaluates the midpoint sum Σ W((t_j+t_{j+1})/2)·ΔW_j
// of paper eq (16), whose limit is W(T)²/2 — demonstrating that the two
// discretizations of the *same* integral differ by T/2 no matter how
// fine the grid (paper §4.2). Midpoint values come from the path's
// linear interpolation, matching eq (16)'s deterministic reading.
func StratonovichWdW(w *randx.Wiener) float64 {
	s := 0.0
	for j := 0; j < w.Steps(); j++ {
		tm := 0.5 * (w.T[j] + w.T[j+1])
		s += w.At(tm) * w.Increment(j)
	}
	return s
}

// GBM is geometric Brownian motion dX = λ·X·dt + σ·X·dW — the
// Black-Scholes dynamics the paper's peak-prediction analogy references.
// Its closed form X(t) = X0·exp((λ-σ²/2)t + σW(t)) is the standard
// strong-convergence reference for EM (Higham, paper ref [13]).
type GBM struct {
	// Lambda is the drift rate, Sigma the volatility, X0 the start.
	Lambda, Sigma, X0 float64
}

// Exact evaluates the closed form on the given Wiener path at its
// sample times.
func (g GBM) Exact(w *randx.Wiener) []float64 {
	out := make([]float64, len(w.T))
	for i, t := range w.T {
		out[i] = g.X0 * math.Exp((g.Lambda-0.5*g.Sigma*g.Sigma)*t+g.Sigma*w.W[i])
	}
	return out
}

// EM integrates the GBM with Euler-Maruyama using every stride-th
// increment of the path (stride lets convergence studies reuse one
// path at several step sizes). It returns X at the subsampled times.
func (g GBM) EM(w *randx.Wiener, stride int) ([]float64, error) {
	if stride < 1 || w.Steps()%stride != 0 {
		return nil, fmt.Errorf("sde: stride %d does not divide %d steps", stride, w.Steps())
	}
	n := w.Steps() / stride
	out := make([]float64, n+1)
	out[0] = g.X0
	x := g.X0
	for j := 0; j < n; j++ {
		dt := w.T[(j+1)*stride] - w.T[j*stride]
		dW := w.W[(j+1)*stride] - w.W[j*stride]
		x += g.Lambda*x*dt + g.Sigma*x*dW
		out[j+1] = x
	}
	return out, nil
}

// OU is the Ornstein-Uhlenbeck process dX = -A·(X-Mu)·dt + Sigma·dW:
// the exact model of a noisy RC node (A = 1/RC), giving the "true
// solution" curve of the paper's Figure 10.
type OU struct {
	// A is the mean-reversion rate (1/s), Mu the equilibrium level,
	// Sigma the noise intensity, X0 the initial value.
	A, Mu, Sigma, X0 float64
}

// Mean returns E[X(t)] = Mu + (X0-Mu)·e^(-A·t).
func (o OU) Mean(t float64) float64 {
	return o.Mu + (o.X0-o.Mu)*math.Exp(-o.A*t)
}

// Var returns Var[X(t)] = σ²/(2A)·(1-e^(-2A·t)).
func (o OU) Var(t float64) float64 {
	if o.A == 0 {
		return o.Sigma * o.Sigma * t
	}
	return o.Sigma * o.Sigma / (2 * o.A) * (1 - math.Exp(-2*o.A*t))
}

// Std returns the standard deviation at t.
func (o OU) Std(t float64) float64 { return math.Sqrt(o.Var(t)) }

// ExactPath samples the exact transition density along the Wiener
// path's grid using independent Gaussian transitions derived from the
// same stream — the reference EM is judged against.
func (o OU) ExactPath(s *randx.Stream, ts []float64) ([]float64, error) {
	if len(ts) < 2 {
		return nil, errors.New("sde: ExactPath needs at least 2 times")
	}
	out := make([]float64, len(ts))
	out[0] = o.X0
	x := o.X0
	for j := 1; j < len(ts); j++ {
		dt := ts[j] - ts[j-1]
		if dt <= 0 {
			return nil, fmt.Errorf("sde: non-increasing time at %d", j)
		}
		ed := math.Exp(-o.A * dt)
		mean := o.Mu + (x-o.Mu)*ed
		sd := math.Sqrt(o.Sigma * o.Sigma / (2 * o.A) * (1 - ed*ed))
		x = mean + sd*s.Norm()
		out[j] = x
	}
	return out, nil
}

// EM integrates the OU with explicit Euler-Maruyama on the given path.
func (o OU) EM(w *randx.Wiener, stride int) ([]float64, error) {
	if stride < 1 || w.Steps()%stride != 0 {
		return nil, fmt.Errorf("sde: stride %d does not divide %d steps", stride, w.Steps())
	}
	n := w.Steps() / stride
	out := make([]float64, n+1)
	out[0] = o.X0
	x := o.X0
	for j := 0; j < n; j++ {
		dt := w.T[(j+1)*stride] - w.T[j*stride]
		dW := w.W[(j+1)*stride] - w.W[j*stride]
		x += -o.A*(x-o.Mu)*dt + o.Sigma*dW
		out[j+1] = x
	}
	return out, nil
}

// Milstein integrates the GBM with the Milstein scheme, which adds the
// 0.5·σ²·X·(ΔW² - h) correction term and achieves strong order 1.0 —
// the natural next step beyond the paper's Euler-Maruyama method
// (extension; Higham §6).
func (g GBM) Milstein(w *randx.Wiener, stride int) ([]float64, error) {
	if stride < 1 || w.Steps()%stride != 0 {
		return nil, fmt.Errorf("sde: stride %d does not divide %d steps", stride, w.Steps())
	}
	n := w.Steps() / stride
	out := make([]float64, n+1)
	out[0] = g.X0
	x := g.X0
	for j := 0; j < n; j++ {
		dt := w.T[(j+1)*stride] - w.T[j*stride]
		dW := w.W[(j+1)*stride] - w.W[j*stride]
		x += g.Lambda*x*dt + g.Sigma*x*dW + 0.5*g.Sigma*g.Sigma*x*(dW*dW-dt)
		out[j+1] = x
	}
	return out, nil
}

// Integrator selects the scheme StrongError measures.
type Integrator int

// Integrator choices.
const (
	// EulerMaruyama is the paper's eq (18) scheme (strong order 1/2).
	EulerMaruyama Integrator = iota
	// MilsteinScheme adds the Ito correction term (strong order 1).
	MilsteinScheme
)

// StrongError measures E|X_num(T) - X_exact(T)| for the GBM over nPaths
// at the given stride ladder, returning one error per stride. This is
// the measurement behind the EM strong-order ablation.
func StrongError(g GBM, tEnd float64, fineSteps, nPaths int, strides []int, seed uint64) ([]float64, error) {
	return StrongErrorOf(g, EulerMaruyama, tEnd, fineSteps, nPaths, strides, seed)
}

// StrongErrorOf is StrongError with a selectable integrator.
func StrongErrorOf(g GBM, scheme Integrator, tEnd float64, fineSteps, nPaths int, strides []int, seed uint64) ([]float64, error) {
	errs := make([]float64, len(strides))
	for p := 0; p < nPaths; p++ {
		w := randx.NewWiener(randx.Split(seed, p), tEnd, fineSteps)
		exact := g.Exact(w)
		xT := exact[len(exact)-1]
		for si, st := range strides {
			var xs []float64
			var err error
			switch scheme {
			case MilsteinScheme:
				xs, err = g.Milstein(w, st)
			default:
				xs, err = g.EM(w, st)
			}
			if err != nil {
				return nil, err
			}
			errs[si] += math.Abs(xs[len(xs)-1] - xT)
		}
	}
	for i := range errs {
		errs[i] /= float64(nPaths)
	}
	return errs, nil
}
