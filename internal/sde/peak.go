package sde

import (
	"math"

	"nanosim/internal/randx"
)

// Peak prediction utilities: the Black-Scholes-style running-maximum
// analysis the paper invokes in §4.2 ("we can predict the peak
// performance within certain time window ... a close analogy is the
// stock price prediction").

// BMExceedProb returns the exact P(max over [0,T] of a standard Wiener
// process exceeds m), by the reflection principle:
// P = 2·(1 - Φ(m/√T)) = erfc(m/√(2T)) for m >= 0.
func BMExceedProb(m, tEnd float64) float64 {
	if m <= 0 {
		return 1
	}
	if tEnd <= 0 {
		return 0
	}
	return math.Erfc(m / math.Sqrt(2*tEnd))
}

// BMExpectedMax returns E[max over [0,T]] = √(2T/π) for a standard
// Wiener process.
func BMExpectedMax(tEnd float64) float64 {
	return math.Sqrt(2 * tEnd / math.Pi)
}

// MCRunningMax estimates the running-maximum distribution of a standard
// Wiener process by Monte Carlo: it returns each path's maximum. Used to
// cross-check the analytic reflection bounds and as the engine for peak
// prediction on processes without closed forms.
func MCRunningMax(seed uint64, tEnd float64, steps, paths int) []float64 {
	out := make([]float64, paths)
	for p := 0; p < paths; p++ {
		w := randx.NewWiener(randx.Split(seed, p), tEnd, steps)
		max := 0.0
		for _, v := range w.W {
			if v > max {
				max = v
			}
		}
		out[p] = max
	}
	return out
}

// OUExceedProbMC estimates P(max over [0,T] of the OU process > level)
// by Monte Carlo with the exact transition sampler (no discretization
// bias in the marginal law; the maximum is still grid-resolved).
func OUExceedProbMC(o OU, tEnd float64, steps, paths int, level float64, seed uint64) float64 {
	ts := make([]float64, steps+1)
	for j := range ts {
		ts[j] = tEnd * float64(j) / float64(steps)
	}
	hits := 0
	for p := 0; p < paths; p++ {
		xs, err := o.ExactPath(randx.Split(seed, p), ts)
		if err != nil {
			return math.NaN()
		}
		for _, x := range xs {
			if x > level {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(paths)
}
