package sde

import (
	"math"
	"testing"

	"nanosim/internal/randx"
	"nanosim/internal/stats"
)

// TestMilsteinStrongOrder: the Milstein correction lifts the strong
// order from ~0.5 to ~1.0 on GBM (extension beyond the paper's EM).
func TestMilsteinStrongOrder(t *testing.T) {
	g := GBM{Lambda: 2, Sigma: 1, X0: 1}
	strides := []int{1, 2, 4, 8, 16}
	errs, err := StrongErrorOf(g, MilsteinScheme, 1, 512, 400, strides, 11)
	if err != nil {
		t.Fatal(err)
	}
	var lh, le []float64
	for i, st := range strides {
		lh = append(lh, math.Log(float64(st)))
		le = append(le, math.Log(errs[i]))
	}
	slope, _, err := stats.LinearFit(lh, le)
	if err != nil {
		t.Fatal(err)
	}
	if slope < 0.8 || slope > 1.2 {
		t.Errorf("Milstein strong order = %.2f, want ~1.0", slope)
	}
	// At the same step, Milstein must be meaningfully more accurate.
	emErrs, err := StrongErrorOf(g, EulerMaruyama, 1, 512, 400, strides, 11)
	if err != nil {
		t.Fatal(err)
	}
	if errs[len(errs)-1] >= emErrs[len(emErrs)-1] {
		t.Errorf("Milstein %g not better than EM %g at coarsest step",
			errs[len(errs)-1], emErrs[len(emErrs)-1])
	}
}

// TestMilsteinZeroNoiseMatchesEuler: without noise, both schemes reduce
// to deterministic Euler and agree exactly.
func TestMilsteinZeroNoiseMatchesEuler(t *testing.T) {
	g := GBM{Lambda: 1.5, Sigma: 0, X0: 2}
	w := randx.NewWiener(randx.New(3), 1, 128)
	em, err := g.EM(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	mil, err := g.Milstein(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range em {
		if em[i] != mil[i] {
			t.Fatalf("schemes diverge at %d without noise: %g vs %g", i, em[i], mil[i])
		}
	}
}

func TestMilsteinValidation(t *testing.T) {
	g := GBM{Lambda: 1, Sigma: 1, X0: 1}
	w := randx.NewWiener(randx.New(1), 1, 10)
	if _, err := g.Milstein(w, 3); err == nil {
		t.Error("non-dividing stride accepted")
	}
	if _, err := g.Milstein(w, 0); err == nil {
		t.Error("zero stride accepted")
	}
}
