package sde

import (
	"math"
	"testing"

	"nanosim/internal/randx"
	"nanosim/internal/stats"
)

// TestEMWeakConvergence: EM's *weak* order is 1 — the error of the mean
// E[X(T)] shrinks linearly in h (strong order is only 1/2). Measured on
// GBM where E[X(T)] = X0·e^(λT) exactly. Weak error measurements are
// noisy; the test uses common random numbers across step sizes and a
// wide acceptance band.
func TestEMWeakConvergence(t *testing.T) {
	g := GBM{Lambda: 2, Sigma: 0.5, X0: 1}
	const tEnd = 1.0
	want := g.X0 * math.Exp(g.Lambda*tEnd)
	strides := []int{2, 8, 32}
	const fine = 512
	const paths = 60000
	errs := make([]float64, len(strides))
	for p := 0; p < paths; p++ {
		w := randx.NewWiener(randx.Split(99, p), tEnd, fine)
		for si, st := range strides {
			xs, err := g.EM(w, st)
			if err != nil {
				t.Fatal(err)
			}
			errs[si] += xs[len(xs)-1]
		}
	}
	var lh, le []float64
	for si, st := range strides {
		mean := errs[si] / paths
		werr := math.Abs(mean - want)
		lh = append(lh, math.Log(float64(st)))
		le = append(le, math.Log(werr))
	}
	slope, _, err := stats.LinearFit(lh, le)
	if err != nil {
		t.Fatal(err)
	}
	if slope < 0.6 || slope > 1.5 {
		t.Errorf("weak order = %.2f, want ~1", slope)
	}
}
