package sde

import (
	"context"
	"fmt"
	"math"

	"nanosim/internal/circuit"
	"nanosim/internal/device"
	"nanosim/internal/flop"
	"nanosim/internal/linsolve"
	"nanosim/internal/randx"
	"nanosim/internal/spmat"
	"nanosim/internal/stamp"
	"nanosim/internal/trace"
	"nanosim/internal/wave"
)

// Options configures an Euler-Maruyama circuit transient (paper §4.2).
// Noise enters through sources whose NoiseSigma is positive.
type Options struct {
	// TStop is the end time (required).
	TStop float64
	// Steps is the number of uniform EM steps (default 1000). EM uses a
	// fixed grid: stochastic integrals are grid-defined objects (paper
	// eq 15) and adaptive stepping would bias them.
	Steps int
	// Seed drives the Wiener increments; the same seed reproduces the
	// same path exactly.
	Seed uint64
	// Explicit selects the paper's eq (18) explicit update. It requires
	// an invertible C (every node needs capacitance and the circuit may
	// not contain voltage sources or inductors). The default
	// drift-implicit form (C + hG)x' = Cx + h·b + B·ΔW handles full MNA
	// and reduces to backward Euler when no noise is present.
	Explicit bool
	// Gmin is the diagonal leak (default 1e-12).
	Gmin float64
	// Solver picks the linear backend (default linsolve.Auto).
	Solver linsolve.Factory
	// FC receives FLOP accounting (may be nil).
	FC *flop.Counter
	// IC maps node names to initial voltages.
	IC map[string]float64
	// RecordCurrents adds voltage-source branch currents to the output.
	RecordCurrents bool
	// Ctx, when non-nil, is polled once per step; a canceled context
	// aborts the path with context.Cause.
	Ctx context.Context
}

func (o Options) withDefaults() (Options, error) {
	if o.TStop <= 0 {
		return o, fmt.Errorf("sde: TStop must be positive, got %g", o.TStop)
	}
	if o.Steps <= 0 {
		o.Steps = 1000
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	if o.Solver == nil {
		o.Solver = linsolve.Auto
	}
	return o, nil
}

// Result is one stochastic path through the circuit.
type Result struct {
	// Waves holds the recorded series.
	Waves *wave.Set
	// X is the final state.
	X []float64
	// NoiseSources is the number of stochastic inputs found.
	NoiseSources int
}

// Transient integrates one Euler-Maruyama path. Nonlinear devices are
// linearized with SWEC equivalent conductances — this pairing of the two
// halves of the paper is what makes the whole a "statistical simulator".
func Transient(ckt *circuit.Circuit, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	sys, err := stamp.NewSystem(ckt)
	if err != nil {
		return nil, err
	}
	return run(sys, opt)
}

func run(sys *stamp.System, opt Options) (*Result, error) {
	dim := sys.Dim()
	sol := opt.Solver(dim, opt.FC)
	ct := spmat.NewTriplet(dim, dim)
	sys.StampC(ct)
	cmat := ct.ToCSR()
	noiseCols := sys.NoiseColumns()

	x, err := sys.InitialState(opt.IC)
	if err != nil {
		return nil, err
	}
	var cinv *explicitC
	if opt.Explicit {
		cinv, err = newExplicitC(sys, opt)
		if err != nil {
			return nil, err
		}
	}

	h := opt.TStop / float64(opt.Steps)
	stream := randx.New(opt.Seed)
	dW := make([]float64, len(noiseCols))
	rhs := make([]float64, dim)
	work := make([]float64, dim)
	xNew := make([]float64, dim)
	rec := trace.NewRecorder(sys, opt.RecordCurrents)
	rec.Sample(0, x)
	sqh := math.Sqrt(h)

	for n := 0; n < opt.Steps; n++ {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			return nil, fmt.Errorf("sde: path canceled at step %d: %w", n, context.Cause(opt.Ctx))
		}
		t := float64(n) * h
		for k := range dW {
			dW[k] = sqh * stream.Norm()
		}
		if opt.Explicit {
			// x' = x + h·C^-1(-G·x + b(t)) + C^-1·B·ΔW  (paper eq 18).
			if err := cinv.step(sys, x, xNew, t, h, dW, noiseCols, opt); err != nil {
				return nil, err
			}
		} else {
			// Drift-implicit: (C/h + G)x' = (C/h)x + b(t+h) + B·ΔW/h.
			sol.Reset()
			sys.StampLinearG(sol)
			for i := 0; i < sys.NodeCount(); i++ {
				sol.Add(i, i, opt.Gmin)
			}
			stampGeq(sys, sol, x, opt.FC)
			sc := scaledAdder{a: sol, s: 1 / h}
			sys.StampC(sc)
			cmat.MulVec(x, work, opt.FC)
			for i := range rhs {
				rhs[i] = work[i] / h
			}
			sys.StampRHS(t+h, rhs)
			for k, col := range noiseCols {
				for i, v := range col {
					if v != 0 {
						rhs[i] += v * dW[k] / h
					}
				}
			}
			if fc := opt.FC; fc != nil {
				fc.Div(dim)
				fc.Mul(len(noiseCols) * 2)
			}
			if err := sol.Solve(rhs, xNew); err != nil {
				return nil, fmt.Errorf("sde: singular system at step %d: %w", n, err)
			}
		}
		if !finite(xNew) {
			return nil, fmt.Errorf("sde: non-finite state at step %d (t=%g); try implicit mode or smaller steps", n, t)
		}
		copy(x, xNew)
		rec.Sample(t+h, x)
	}
	return &Result{Waves: rec.Set(), X: x, NoiseSources: len(noiseCols)}, nil
}

// stampGeq stamps SWEC equivalent conductances at state x.
func stampGeq(sys *stamp.System, sol stamp.Adder, x []float64, fc *flop.Counter) {
	for _, tt := range sys.TwoTerms() {
		v := sys.Branch(x, tt.Elem.A, tt.Elem.B)
		g := device.Geq(tt.Elem.Model, v)
		charge(fc, tt.Elem.Model.Cost())
		stamp.Stamp2(sol, tt.IA, tt.IB, g)
	}
	for _, f := range sys.FETs() {
		vgs := sys.Branch(x, f.Elem.G, f.Elem.S)
		vds := sys.Branch(x, f.Elem.D, f.Elem.S)
		g := f.Elem.Model.GeqDS(vgs, vds)
		charge(fc, f.Elem.Model.Cost())
		stamp.Stamp2(sol, f.ID, f.IS, g)
	}
}

func charge(fc *flop.Counter, c device.Cost) {
	if fc == nil {
		return
	}
	fc.Add(c.Adds)
	fc.Mul(c.Muls)
	fc.Div(c.Divs)
	fc.Func(c.Funcs)
	fc.DeviceEval()
}

// scaledAdder stamps v*s.
type scaledAdder struct {
	a stamp.Adder
	s float64
}

// Add implements stamp.Adder.
func (sa scaledAdder) Add(i, j int, v float64) { sa.a.Add(i, j, v*sa.s) }

// gStamper accumulates the per-step G matrix with deterministic
// summation order: the first assembly records the stamp sequence into a
// map-backed Triplet, which is compiled into a Pattern; later assemblies
// replay positionally into compiled slots and the product runs in fixed
// CSR row order. Determinism matters here — the Options contract
// promises the same seed reproduces the same path bit for bit, which a
// map-iteration product would break.
type gStamper struct {
	n     int
	t     *spmat.Triplet
	seq   []int64
	pat   *spmat.Pattern
	slots []int32
	cur   int
}

func newGStamper(n int) *gStamper { return &gStamper{n: n, t: spmat.NewTriplet(n, n)} }

// Add implements stamp.Adder.
func (g *gStamper) Add(i, j int, v float64) {
	if g.pat != nil {
		if g.cur < len(g.seq) && g.seq[g.cur] == spmat.Key(i, j) {
			g.pat.AddSlot(g.slots[g.cur], v)
			g.cur++
			return
		}
		// Stamp order diverged (cannot happen for a fixed circuit, but
		// stay correct): spill back to the map accumulator.
		g.t = spmat.NewTriplet(g.n, g.n)
		g.pat.EachNonzero(func(i2, j2 int, v2 float64) { g.t.Add(i2, j2, v2) })
		g.seq = g.seq[:g.cur]
		g.pat, g.slots = nil, nil
	}
	g.t.Add(i, j, v)
	g.seq = append(g.seq, spmat.Key(i, j))
}

// reset clears values for the next assembly, keeping the compiled
// structure.
func (g *gStamper) reset() {
	if g.pat != nil {
		g.pat.Zero()
		g.cur = 0
		return
	}
	g.t.Zero()
	g.seq = g.seq[:0]
}

// mulVec computes y = G*x, compiling the pattern on first use.
func (g *gStamper) mulVec(x, y []float64, fc *flop.Counter) {
	if g.pat == nil {
		pat, slots := spmat.CompilePattern(g.n, g.seq)
		g.t.Each(func(i, j int, v float64) { pat.SetAt(i, j, v) })
		g.pat, g.slots = pat, slots
		g.t = nil
		g.cur = len(g.seq)
	}
	g.pat.MulVec(x, y, fc)
}

// explicitC factors the capacitance matrix once for the explicit update
// and keeps the per-step assembly scratch so stepping stays cheap.
type explicitC struct {
	sol linsolve.Solver
	gt  *gStamper
	r   []float64
	b   []float64
	dx  []float64
}

// newExplicitC validates the circuit for explicit EM and factors C.
func newExplicitC(sys *stamp.System, opt Options) (*explicitC, error) {
	if len(sys.VSources()) > 0 {
		return nil, fmt.Errorf("sde: explicit EM cannot handle voltage sources (the C matrix is singular on their branch rows); use implicit mode or drive with current sources")
	}
	inds, _ := sys.Inductors()
	if len(inds) > 0 {
		return nil, fmt.Errorf("sde: explicit EM cannot handle inductors; use implicit mode")
	}
	sol := opt.Solver(sys.Dim(), opt.FC)
	sys.StampC(sol)
	// Probe the factorization once by solving against a unit vector.
	probe := make([]float64, sys.Dim())
	if sys.Dim() > 0 {
		probe[0] = 1
	}
	tmp := make([]float64, sys.Dim())
	if err := sol.Solve(probe, tmp); err != nil {
		return nil, fmt.Errorf("sde: explicit EM needs capacitance on every node: %w", err)
	}
	return &explicitC{
		sol: sol,
		gt:  newGStamper(sys.Dim()),
		r:   make([]float64, sys.Dim()),
		b:   make([]float64, sys.Dim()),
		dx:  make([]float64, sys.Dim()),
	}, nil
}

// step performs one explicit EM update.
func (ec *explicitC) step(sys *stamp.System, x, xNew []float64, t, h float64, dW []float64, noiseCols [][]float64, opt Options) error {
	// r = -G·x + b(t), with G including Geq companions at x.
	gt := ec.gt
	gt.reset()
	sys.StampLinearG(gt)
	for i := 0; i < sys.NodeCount(); i++ {
		gt.Add(i, i, opt.Gmin)
	}
	stampGeq(sys, gt, x, opt.FC)
	r := ec.r
	gt.mulVec(x, r, opt.FC)
	for i := range r {
		r[i] = -r[i]
	}
	b := ec.b
	for i := range b {
		b[i] = 0
	}
	sys.StampRHS(t, b)
	for i := range r {
		r[i] = h * (r[i] + b[i])
	}
	for k, col := range noiseCols {
		for i, v := range col {
			if v != 0 {
				r[i] += v * dW[k]
			}
		}
	}
	// xNew = x + C^-1 r (the C factorization is reused across all steps:
	// nothing is restamped, so the solver skips refactorization).
	dx := ec.dx
	if err := ec.sol.Solve(r, dx); err != nil {
		return fmt.Errorf("sde: explicit step solve: %w", err)
	}
	for i := range xNew {
		xNew[i] = x[i] + dx[i]
	}
	if fc := opt.FC; fc != nil {
		fc.Add(sys.Dim() * 3)
		fc.Mul(sys.Dim())
	}
	return nil
}

func finite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
