// Package flop provides the floating-point-operation accounting used to
// reproduce Table I of the paper, which compares the number of FLOPs SWEC
// and MLA spend on identical DC simulations. All engines thread the same
// Counter through their matrix kernels and device evaluations so the
// ratios between engines are meaningful even though the absolute counts
// are model-dependent.
//
// Accounting convention (documented in DESIGN.md §5): each floating point
// add, subtract, multiply, divide and comparison-free special function
// call (exp, ln, atan, sqrt) costs one FLOP. Transcendentals genuinely
// cost more cycles, but both simulators call the same device models, so a
// uniform convention preserves the ratio the paper reports.
package flop

import "sync/atomic"

// Counter accumulates floating point operations by category. The zero
// value is ready to use. Counters are safe for concurrent use so Monte
// Carlo ensembles can share one.
type Counter struct {
	adds    atomic.Int64
	muls    atomic.Int64
	divs    atomic.Int64
	funcs   atomic.Int64 // exp, ln, atan, sqrt, ...
	solves  atomic.Int64 // linear system factor+solve events
	devEval atomic.Int64 // device model evaluations
	iters   atomic.Int64 // outer iterations (NR loops, fixed-point passes)
}

// Add records n additions/subtractions.
func (c *Counter) Add(n int) {
	if c != nil {
		c.adds.Add(int64(n))
	}
}

// Mul records n multiplications.
func (c *Counter) Mul(n int) {
	if c != nil {
		c.muls.Add(int64(n))
	}
}

// Div records n divisions.
func (c *Counter) Div(n int) {
	if c != nil {
		c.divs.Add(int64(n))
	}
}

// Func records n special function evaluations (exp, ln, atan, sqrt).
func (c *Counter) Func(n int) {
	if c != nil {
		c.funcs.Add(int64(n))
	}
}

// Solve records one linear-system factor/solve event.
func (c *Counter) Solve() {
	if c != nil {
		c.solves.Add(1)
	}
}

// DeviceEval records one nonlinear device model evaluation.
func (c *Counter) DeviceEval() {
	if c != nil {
		c.devEval.Add(1)
	}
}

// Iter records one outer iteration (a Newton-Raphson pass, a Geq
// fixed-point pass, ...).
func (c *Counter) Iter() {
	if c != nil {
		c.iters.Add(1)
	}
}

// Total returns the total FLOP count (adds+muls+divs+funcs).
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.adds.Load() + c.muls.Load() + c.divs.Load() + c.funcs.Load()
}

// Snapshot is an immutable copy of a Counter's state, suitable for
// reporting and differencing.
type Snapshot struct {
	Adds, Muls, Divs, Funcs int64
	Solves, DeviceEvals     int64
	Iterations              int64
}

// Snapshot returns the current counts.
func (c *Counter) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Adds:        c.adds.Load(),
		Muls:        c.muls.Load(),
		Divs:        c.divs.Load(),
		Funcs:       c.funcs.Load(),
		Solves:      c.solves.Load(),
		DeviceEvals: c.devEval.Load(),
		Iterations:  c.iters.Load(),
	}
}

// Reset zeroes all counts.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.adds.Store(0)
	c.muls.Store(0)
	c.divs.Store(0)
	c.funcs.Store(0)
	c.solves.Store(0)
	c.devEval.Store(0)
	c.iters.Store(0)
}

// Total returns the total FLOPs recorded in the snapshot.
func (s Snapshot) Total() int64 { return s.Adds + s.Muls + s.Divs + s.Funcs }

// Sub returns the element-wise difference s - o, used to attribute FLOPs
// to a phase of a simulation.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Adds:        s.Adds - o.Adds,
		Muls:        s.Muls - o.Muls,
		Divs:        s.Divs - o.Divs,
		Funcs:       s.Funcs - o.Funcs,
		Solves:      s.Solves - o.Solves,
		DeviceEvals: s.DeviceEvals - o.DeviceEvals,
		Iterations:  s.Iterations - o.Iterations,
	}
}
