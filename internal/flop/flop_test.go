package flop

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Mul(4)
	c.Div(2)
	c.Func(1)
	c.Solve()
	c.DeviceEval()
	c.Iter()
	if got := c.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	s := c.Snapshot()
	if s.Adds != 3 || s.Muls != 4 || s.Divs != 2 || s.Funcs != 1 {
		t.Errorf("Snapshot = %+v", s)
	}
	if s.Solves != 1 || s.DeviceEvals != 1 || s.Iterations != 1 {
		t.Errorf("event counts wrong: %+v", s)
	}
	if s.Total() != 10 {
		t.Errorf("Snapshot.Total = %d, want 10", s.Total())
	}
}

func TestNilCounterIsSafe(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Mul(1)
	c.Div(1)
	c.Func(1)
	c.Solve()
	c.DeviceEval()
	c.Iter()
	c.Reset()
	if c.Total() != 0 {
		t.Error("nil counter should report zero")
	}
	if c.Snapshot() != (Snapshot{}) {
		t.Error("nil counter snapshot should be zero")
	}
}

func TestReset(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Solve()
	c.Reset()
	if c.Total() != 0 || c.Snapshot().Solves != 0 {
		t.Error("Reset did not zero the counter")
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counter
	c.Add(5)
	before := c.Snapshot()
	c.Add(3)
	c.Mul(2)
	d := c.Snapshot().Sub(before)
	if d.Adds != 3 || d.Muls != 2 {
		t.Errorf("Sub = %+v, want Adds=3 Muls=2", d)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(1)
				c.Mul(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Total(); got != 2*workers*per {
		t.Errorf("Total = %d, want %d", got, 2*workers*per)
	}
}
