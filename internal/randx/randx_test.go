package randx

import (
	"math"
	"testing"
)

func TestStreamReproducible(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Norm() != b.Norm() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 100; i++ {
		if a.Norm() == c.Norm() {
			same++
		}
	}
	if same > 5 {
		t.Error("different seeds produced suspiciously similar sequences")
	}
}

func TestSplitIndependence(t *testing.T) {
	s0, s1 := Split(9, 0), Split(9, 1)
	matches := 0
	for i := 0; i < 1000; i++ {
		if s0.Float64() == s1.Float64() {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("split streams collided %d times", matches)
	}
	// Same (seed, index) must reproduce.
	a, b := Split(9, 3), Split(9, 3)
	if a.Norm() != b.Norm() {
		t.Error("Split not deterministic")
	}
}

func TestNormMoments(t *testing.T) {
	s := New(7)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestNormVecAndIntn(t *testing.T) {
	s := New(3)
	v := make([]float64, 10)
	s.NormVec(v)
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero < 8 {
		t.Error("NormVec left elements unset")
	}
	for i := 0; i < 100; i++ {
		if k := s.Intn(5); k < 0 || k >= 5 {
			t.Fatalf("Intn out of range: %d", k)
		}
	}
}

// TestWienerProperties checks the three defining conditions from paper
// §4.1: W(0)=0, increments ~N(0, dt), disjoint increments independent.
func TestWienerProperties(t *testing.T) {
	const paths, steps = 2000, 16
	const tEnd = 1.0
	dt := tEnd / steps
	// Across many paths, check increment mean/variance and correlation of
	// adjacent increments.
	var sum, sum2, cross float64
	for p := 0; p < paths; p++ {
		w := NewWiener(Split(11, p), tEnd, steps)
		if w.W[0] != 0 || w.T[0] != 0 {
			t.Fatal("W(0) != 0")
		}
		for j := 0; j < steps; j++ {
			d := w.Increment(j)
			sum += d
			sum2 += d * d
			if j > 0 {
				cross += d * w.Increment(j-1)
			}
		}
	}
	n := float64(paths * steps)
	mean := sum / n
	variance := sum2 / n
	corr := cross / (float64(paths*(steps-1)) * dt)
	if math.Abs(mean) > 4*math.Sqrt(dt/n) {
		t.Errorf("increment mean = %g, want ~0", mean)
	}
	if math.Abs(variance-dt)/dt > 0.05 {
		t.Errorf("increment variance = %g, want %g", variance, dt)
	}
	if math.Abs(corr) > 0.05 {
		t.Errorf("adjacent increment correlation = %g, want ~0", corr)
	}
}

func TestWienerEndpointVariance(t *testing.T) {
	// Var[W(T)] = T.
	const paths = 5000
	const tEnd = 2.5
	var sum2 float64
	for p := 0; p < paths; p++ {
		w := NewWiener(Split(5, p), tEnd, 8)
		end := w.W[w.Steps()]
		sum2 += end * end
	}
	v := sum2 / paths
	if math.Abs(v-tEnd)/tEnd > 0.07 {
		t.Errorf("Var[W(T)] = %g, want %g", v, tEnd)
	}
}

func TestWienerAt(t *testing.T) {
	w := &Wiener{T: []float64{0, 1, 2}, W: []float64{0, 2, -2}}
	if w.At(-1) != 0 || w.At(5) != -2 {
		t.Error("At should clamp to domain")
	}
	if got := w.At(0.5); got != 1 {
		t.Errorf("At(0.5) = %g, want 1", got)
	}
	if got := w.At(1.5); got != 0 {
		t.Errorf("At(1.5) = %g, want 0", got)
	}
}

func TestRefinePreservesSamples(t *testing.T) {
	s := New(21)
	w := NewWiener(s, 1, 8)
	r := w.Refine(New(22))
	if r.Steps() != 16 {
		t.Fatalf("refined steps = %d, want 16", r.Steps())
	}
	for j := 0; j <= 8; j++ {
		if r.W[2*j] != w.W[j] || r.T[2*j] != w.T[j] {
			t.Fatalf("refinement moved original sample %d", j)
		}
	}
}

func TestRefineBridgeVariance(t *testing.T) {
	// Midpoint of a bridge over [0, dt] given endpoints has variance dt/4.
	const paths = 4000
	var sum2 float64
	for p := 0; p < paths; p++ {
		w := NewWiener(Split(31, p), 1, 1) // single step of dt=1
		r := w.Refine(Split(41, p))
		mid := r.W[1] - 0.5*(w.W[0]+w.W[1])
		sum2 += mid * mid
	}
	v := sum2 / paths
	if math.Abs(v-0.25) > 0.02 {
		t.Errorf("bridge midpoint variance = %g, want 0.25", v)
	}
}

func TestCoarsen(t *testing.T) {
	w := NewWiener(New(1), 1, 8)
	c := w.Coarsen(2)
	if c.Steps() != 4 {
		t.Fatalf("coarsened steps = %d, want 4", c.Steps())
	}
	for j := 0; j <= 4; j++ {
		if c.W[j] != w.W[2*j] {
			t.Fatal("Coarsen did not subsample")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Coarsen with non-dividing stride did not panic")
		}
	}()
	w.Coarsen(3)
}

func TestNewWienerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWiener(0 steps) did not panic")
		}
	}()
	NewWiener(New(1), 1, 0)
}
