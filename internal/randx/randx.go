// Package randx provides the reproducible random number machinery behind
// the Euler-Maruyama engine of the paper's "statistical" half: seeded
// streams, normal variates and discretized Wiener processes (standard
// Brownian motion), plus Brownian-bridge refinement for adaptive-step
// stochastic integration.
//
// Reproducibility contract: every generator is constructed from an
// explicit uint64 seed, streams derived with Split are independent for
// distinct indices, and no package-level mutable state exists — Monte
// Carlo ensembles run one stream per path and produce identical results
// at any GOMAXPROCS.
package randx

import (
	"math"
	"math/rand"
)

// Stream is a seeded source of variates. It wraps the stdlib generator so
// the rest of nanosim never touches math/rand directly, keeping the
// seeding policy in one place.
type Stream struct {
	rng *rand.Rand
}

// New returns a Stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(int64(seed)))}
}

// splitMix64 scrambles a counter into a well-distributed 64-bit value;
// used to derive independent child seeds.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives the i-th child stream of the given seed. Children with
// different indices are statistically independent, which lets ensemble
// runners hand one stream to each Monte Carlo path.
func Split(seed uint64, i int) *Stream {
	return New(splitMix64(seed ^ splitMix64(uint64(i)+1)))
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Norm returns a standard normal variate.
func (s *Stream) Norm() float64 { return s.rng.NormFloat64() }

// Uint64 returns a uniform 64-bit value, used to derive child seeds
// (e.g. the per-trial Euler-Maruyama seed of a process-variation run)
// from a stream without coupling them to the stream's variate draws.
func (s *Stream) Uint64() uint64 { return s.rng.Uint64() }

// NormVec fills dst with independent standard normal variates.
func (s *Stream) NormVec(dst []float64) {
	for i := range dst {
		dst[i] = s.rng.NormFloat64()
	}
}

// Intn returns a uniform int in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Wiener is a discretized standard Wiener process W(t) on [0, T]:
// W(0) = 0, increments W(t)-W(s) ~ N(0, t-s) independent on disjoint
// intervals (paper §4.1 conditions 1-3).
type Wiener struct {
	T []float64 // sample times, T[0] == 0
	W []float64 // process values, W[0] == 0
}

// NewWiener samples a Wiener path at n uniform steps over [0, tEnd].
// The returned path has n+1 points including the origin.
func NewWiener(s *Stream, tEnd float64, n int) *Wiener {
	if n < 1 || tEnd <= 0 {
		panic("randx: NewWiener needs n >= 1 and tEnd > 0")
	}
	dt := tEnd / float64(n)
	sq := math.Sqrt(dt)
	w := &Wiener{T: make([]float64, n+1), W: make([]float64, n+1)}
	for j := 1; j <= n; j++ {
		w.T[j] = float64(j) * dt
		w.W[j] = w.W[j-1] + sq*s.Norm()
	}
	return w
}

// Increment returns W(T[j+1]) - W(T[j]).
func (w *Wiener) Increment(j int) float64 { return w.W[j+1] - w.W[j] }

// Steps returns the number of increments in the path.
func (w *Wiener) Steps() int { return len(w.T) - 1 }

// At returns W(t) by linear interpolation between samples; t is clamped
// to the path's domain. Interpolation (rather than bridge sampling) is
// deterministic, which integrators rely on when re-evaluating a step.
func (w *Wiener) At(t float64) float64 {
	n := len(w.T)
	if t <= w.T[0] {
		return w.W[0]
	}
	if t >= w.T[n-1] {
		return w.W[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - w.T[lo]) / (w.T[hi] - w.T[lo])
	return w.W[lo] + f*(w.W[hi]-w.W[lo])
}

// Refine returns a new path with each step split in two using the
// Brownian bridge, preserving the original samples exactly. This supports
// step-halving convergence studies on the *same* underlying randomness,
// which is how strong EM convergence order is measured (Higham §4,
// paper ref [13]).
func (w *Wiener) Refine(s *Stream) *Wiener {
	n := w.Steps()
	r := &Wiener{T: make([]float64, 2*n+1), W: make([]float64, 2*n+1)}
	for j := 0; j < n; j++ {
		t0, t1 := w.T[j], w.T[j+1]
		tm := 0.5 * (t0 + t1)
		// Brownian bridge midpoint: mean of endpoints + N(0, dt/4).
		mean := 0.5 * (w.W[j] + w.W[j+1])
		sd := 0.5 * math.Sqrt(t1-t0)
		r.T[2*j], r.W[2*j] = t0, w.W[j]
		r.T[2*j+1], r.W[2*j+1] = tm, mean+sd*s.Norm()
	}
	r.T[2*n], r.W[2*n] = w.T[n], w.W[n]
	return r
}

// Coarsen returns the path sampled at every stride-th point; the natural
// inverse of Refine for convergence ladders. stride must divide Steps().
func (w *Wiener) Coarsen(stride int) *Wiener {
	n := w.Steps()
	if stride < 1 || n%stride != 0 {
		panic("randx: Coarsen stride must divide step count")
	}
	m := n / stride
	r := &Wiener{T: make([]float64, m+1), W: make([]float64, m+1)}
	for j := 0; j <= m; j++ {
		r.T[j] = w.T[j*stride]
		r.W[j] = w.W[j*stride]
	}
	return r
}
