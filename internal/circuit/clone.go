package circuit

import "nanosim/internal/device"

// Clone returns an independent deep copy of the circuit: node tables and
// element structs are copied, nonlinear device models are deep-copied
// through device.CloneIV, and every FET gets its own MOSFET instance.
// Waveforms are shared — they are immutable by contract.
//
// Clone preserves element insertion order exactly, which matters beyond
// aesthetics: the MNA stamp sequence of a clone is identical to the
// original's, so a solver whose compiled stamp pattern and symbolic LU
// were warmed on one copy replays allocation-free on any other. The
// process-variation runner (internal/vary) leans on this to reuse one
// solver per worker across all Monte Carlo trials.
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Title:     c.Title,
		Hier:      c.Hier, // read-only provenance, shared by contract
		nodeNames: append([]string(nil), c.nodeNames...),
		nodeIndex: make(map[string]NodeID, len(c.nodeIndex)),
		elems:     make([]Element, 0, len(c.elems)),
		byName:    make(map[string]Element, len(c.byName)),
	}
	for k, v := range c.nodeIndex {
		nc.nodeIndex[k] = v
	}
	for _, e := range c.elems {
		var ce Element
		switch t := e.(type) {
		case *Resistor:
			cp := *t
			ce = &cp
		case *Capacitor:
			cp := *t
			ce = &cp
		case *Inductor:
			cp := *t
			ce = &cp
		case *VSource:
			cp := *t
			ce = &cp
		case *ISource:
			cp := *t
			ce = &cp
		case *TwoTerm:
			cp := *t
			cp.Model = device.CloneIV(t.Model)
			ce = &cp
		case *FET:
			cp := *t
			cp.Model = t.Model.Clone()
			ce = &cp
		case *Island:
			cp := *t
			ce = &cp
		case *TunnelJunction:
			cp := *t
			ce = &cp
		default:
			// Unknown element kinds are shared; nothing in this package
			// constructs them.
			ce = e
		}
		nc.elems = append(nc.elems, ce)
		nc.byName[ce.Name()] = ce
	}
	return nc
}
