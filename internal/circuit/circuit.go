// Package circuit represents a nanotechnology circuit as a named graph of
// elements over voltage nodes, with a builder API used directly by the
// examples and by the netlist parser. It is purely structural: device
// physics lives in internal/device, and the modified-nodal-analysis view
// of a circuit lives in internal/stamp.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"nanosim/internal/device"
)

// NodeID identifies a node; 0 is always ground ("0" / "gnd").
type NodeID int

// Ground is the reference node.
const Ground NodeID = 0

// Element is any circuit component. Implementations live in this package
// so a Circuit fully describes a simulation input.
type Element interface {
	// Name returns the unique element name (e.g. "R1").
	Name() string
	// Nodes returns all terminal nodes in declaration order.
	Nodes() []NodeID
}

// Circuit is a mutable netlist.
type Circuit struct {
	// Title is a free-form description (netlist first line).
	Title string

	// Hier is the subcircuit provenance sidecar netparse attaches when
	// the deck defines .subckt masters; nil for flat decks. It is
	// read-only after parse and shared (not deep-copied) by Clone.
	Hier *Hierarchy

	nodeNames []string
	nodeIndex map[string]NodeID
	elems     []Element
	byName    map[string]Element
}

// New returns an empty circuit containing only the ground node.
func New(title string) *Circuit {
	c := &Circuit{
		Title:     title,
		nodeNames: []string{"0"},
		nodeIndex: map[string]NodeID{"0": Ground, "gnd": Ground, "GND": Ground},
		byName:    make(map[string]Element),
	}
	return c
}

// Node returns the NodeID for name, creating the node on first use.
// "0", "gnd" and "GND" alias the ground node.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = id
	return id
}

// NodeName returns the declared name of id ("0" for ground).
func (c *Circuit) NodeName(id NodeID) string {
	if int(id) < 0 || int(id) >= len(c.nodeNames) {
		return fmt.Sprintf("node#%d", int(id))
	}
	return c.nodeNames[id]
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Elements returns the elements in insertion order.
func (c *Circuit) Elements() []Element { return c.elems }

// Element returns the named element, or nil.
func (c *Circuit) Element(name string) Element { return c.byName[name] }

// NodeNames returns all non-ground node names sorted alphabetically,
// useful for deterministic reporting.
func (c *Circuit) NodeNames() []string {
	out := make([]string, 0, len(c.nodeNames)-1)
	for i, n := range c.nodeNames {
		if i != 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// add validates and inserts an element.
func (c *Circuit) add(e Element) error {
	name := e.Name()
	if name == "" {
		return fmt.Errorf("circuit: element with empty name")
	}
	if _, dup := c.byName[name]; dup {
		return fmt.Errorf("circuit: duplicate element name %q", name)
	}
	for _, n := range e.Nodes() {
		if int(n) < 0 || int(n) >= len(c.nodeNames) {
			return fmt.Errorf("circuit: element %q references unknown node %d", name, n)
		}
	}
	c.elems = append(c.elems, e)
	c.byName[name] = e
	return nil
}

// String renders a netlist-like summary for diagnostics.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", c.Title)
	for _, e := range c.elems {
		nodes := make([]string, 0, 2)
		for _, n := range e.Nodes() {
			nodes = append(nodes, c.NodeName(n))
		}
		fmt.Fprintf(&b, "%-8s %s\n", e.Name(), strings.Join(nodes, " "))
	}
	return b.String()
}

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	name string
	A, B NodeID
	// R is the resistance in ohms (> 0).
	R float64
}

// Name implements Element.
func (r *Resistor) Name() string { return r.name }

// Nodes implements Element.
func (r *Resistor) Nodes() []NodeID { return []NodeID{r.A, r.B} }

// Conductance returns 1/R.
func (r *Resistor) Conductance() float64 { return 1 / r.R }

// AddResistor adds a resistor between named nodes.
func (c *Circuit) AddResistor(name, a, b string, ohms float64) (*Resistor, error) {
	if ohms <= 0 {
		return nil, fmt.Errorf("circuit: resistor %q must have R > 0, got %g", name, ohms)
	}
	r := &Resistor{name: name, A: c.Node(a), B: c.Node(b), R: ohms}
	return r, c.add(r)
}

// Capacitor is a linear two-terminal capacitance.
type Capacitor struct {
	name string
	A, B NodeID
	// C is the capacitance in farads (> 0).
	C float64
	// IC is the optional initial branch voltage; valid when HasIC.
	IC    float64
	HasIC bool
}

// Name implements Element.
func (cp *Capacitor) Name() string { return cp.name }

// Nodes implements Element.
func (cp *Capacitor) Nodes() []NodeID { return []NodeID{cp.A, cp.B} }

// AddCapacitor adds a capacitor between named nodes.
func (c *Circuit) AddCapacitor(name, a, b string, farads float64) (*Capacitor, error) {
	if farads <= 0 {
		return nil, fmt.Errorf("circuit: capacitor %q must have C > 0, got %g", name, farads)
	}
	cp := &Capacitor{name: name, A: c.Node(a), B: c.Node(b), C: farads}
	return cp, c.add(cp)
}

// Inductor is a linear two-terminal inductance; it introduces a branch
// current unknown in MNA.
type Inductor struct {
	name string
	A, B NodeID
	// L is the inductance in henries (> 0).
	L float64
}

// Name implements Element.
func (l *Inductor) Name() string { return l.name }

// Nodes implements Element.
func (l *Inductor) Nodes() []NodeID { return []NodeID{l.A, l.B} }

// AddInductor adds an inductor between named nodes.
func (c *Circuit) AddInductor(name, a, b string, henries float64) (*Inductor, error) {
	if henries <= 0 {
		return nil, fmt.Errorf("circuit: inductor %q must have L > 0, got %g", name, henries)
	}
	l := &Inductor{name: name, A: c.Node(a), B: c.Node(b), L: henries}
	return l, c.add(l)
}

// VSource is an independent voltage source (branch-current unknown in
// MNA). NoiseSigma > 0 marks it as a stochastic input for the
// Euler-Maruyama engine: the source voltage becomes W(t)·NoiseSigma on
// top of the deterministic waveform (units V/√s intensity).
type VSource struct {
	name     string
	Pos, Neg NodeID
	// W is the deterministic waveform.
	W device.Waveform
	// NoiseSigma is the white-noise intensity (0 = deterministic).
	NoiseSigma float64
	// ACMag and ACPhase (degrees) define the small-signal excitation for
	// .ac analysis; ACMag == 0 means the source is AC-quiet.
	ACMag, ACPhase float64
}

// Name implements Element.
func (v *VSource) Name() string { return v.name }

// Nodes implements Element.
func (v *VSource) Nodes() []NodeID { return []NodeID{v.Pos, v.Neg} }

// AddVSource adds a voltage source (pos, neg) with the given waveform.
func (c *Circuit) AddVSource(name, pos, neg string, w device.Waveform) (*VSource, error) {
	if w == nil {
		return nil, fmt.Errorf("circuit: vsource %q needs a waveform", name)
	}
	v := &VSource{name: name, Pos: c.Node(pos), Neg: c.Node(neg), W: w}
	return v, c.add(v)
}

// ISource is an independent current source pushing current from Neg to
// Pos through the external circuit (SPICE convention: positive current
// flows from Pos terminal through the source to Neg). NoiseSigma > 0
// marks a stochastic input (units A/√s intensity).
type ISource struct {
	name     string
	Pos, Neg NodeID
	// W is the deterministic waveform.
	W device.Waveform
	// NoiseSigma is the white-noise intensity (0 = deterministic).
	NoiseSigma float64
	// ACMag and ACPhase (degrees) define the small-signal excitation for
	// .ac analysis; ACMag == 0 means the source is AC-quiet.
	ACMag, ACPhase float64
}

// Name implements Element.
func (i *ISource) Name() string { return i.name }

// Nodes implements Element.
func (i *ISource) Nodes() []NodeID { return []NodeID{i.Pos, i.Neg} }

// AddISource adds a current source with the given waveform.
func (c *Circuit) AddISource(name, pos, neg string, w device.Waveform) (*ISource, error) {
	if w == nil {
		return nil, fmt.Errorf("circuit: isource %q needs a waveform", name)
	}
	i := &ISource{name: name, Pos: c.Node(pos), Neg: c.Node(neg), W: w}
	return i, c.add(i)
}

// TwoTerm is a nonlinear two-terminal device (RTD, nanowire, RTT, diode,
// PWL table) wrapping a device.IV model; the branch voltage is V(A)-V(B).
type TwoTerm struct {
	name string
	A, B NodeID
	// Model is the I-V physics.
	Model device.IV
}

// Name implements Element.
func (t *TwoTerm) Name() string { return t.name }

// Nodes implements Element.
func (t *TwoTerm) Nodes() []NodeID { return []NodeID{t.A, t.B} }

// AddDevice adds a nonlinear two-terminal device.
func (c *Circuit) AddDevice(name, a, b string, m device.IV) (*TwoTerm, error) {
	if m == nil {
		return nil, fmt.Errorf("circuit: device %q needs a model", name)
	}
	t := &TwoTerm{name: name, A: c.Node(a), B: c.Node(b), Model: m}
	return t, c.add(t)
}

// FET is a three-terminal MOSFET instance.
type FET struct {
	name    string
	D, G, S NodeID
	// Model is the transistor physics.
	Model *device.MOSFET
}

// Name implements Element.
func (f *FET) Name() string { return f.name }

// Nodes implements Element.
func (f *FET) Nodes() []NodeID { return []NodeID{f.D, f.G, f.S} }

// AddFET adds a MOSFET with drain, gate, source nodes.
func (c *Circuit) AddFET(name, d, g, s string, m *device.MOSFET) (*FET, error) {
	if m == nil {
		return nil, fmt.Errorf("circuit: fet %q needs a model", name)
	}
	f := &FET{name: name, D: c.Node(d), G: c.Node(g), S: c.Node(s)}
	f.Model = m
	return f, c.add(f)
}
