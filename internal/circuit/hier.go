package circuit

// Hierarchy is the sidecar netparse attaches to a flattened circuit so
// downstream consumers can ask "which elements came from which
// subcircuit instance, and which instances share a master?" without
// re-deriving it from name prefixes. The flat expansion stays the
// semantic source of truth — the sidecar adds provenance, it never
// changes what was expanded: the hierarchical compiler (internal/hier)
// uses it to compile each master once and instantiate by offset, and
// the vary/mc path resolver uses it to bind `X1.X2.R1` device paths to
// real instances instead of trusting the string convention.
type Hierarchy struct {
	// Masters indexes the deck's subcircuit definitions by their
	// lowercase names, including masters that were never instantiated.
	Masters map[string]*Master
	// Instances lists every expanded instance in expansion order
	// (pre-order: a parent precedes its nested instances).
	Instances []*Instance

	byPath map[string]*Instance
}

// Master describes one .subckt definition.
type Master struct {
	// Name is the lowercase subcircuit name.
	Name string
	// Ports lists the port node names in declaration order.
	Ports []string
	// Hash is a stable content hash of the master body — ports, logical
	// body lines, and (recursively) the hashes of nested masters it
	// instantiates — so the serve-side template cache can share compiled
	// masters across decks that carry the same subcircuit library under
	// possibly different surrounding netlists.
	Hash string
	// Uses counts expanded instances of this master across the deck
	// (nested expansions included).
	Uses int
	// Line is the .subckt source line.
	Line int
}

// Instance is one row of the instance table: an expanded X card.
type Instance struct {
	// Path is the hierarchical prefix ("X1", "X1.X2"): every flattened
	// element or internal-node name owned by the instance is
	// Path + "." + its master-local name.
	Path string
	// Master is the lowercase master name.
	Master string
	// Parent indexes Instances; -1 for top-level instances.
	Parent int
	// Bindings maps master port names to the global (flattened) node
	// names bound on the X card, in the master's port order semantics.
	Bindings map[string]string
	// Params holds instance parameter overrides from the X card. The
	// dialect currently defines none, so the map is empty; the table
	// carries it so consumers need no format change when overrides land.
	Params map[string]float64
	// Elems lists the flattened names of the elements this instance owns
	// directly (elements of nested instances belong to those instances).
	Elems []string
	// InternalNodes lists the flattened names of the nodes this
	// instance's expansion created (ports excluded).
	InternalNodes []string
	// Line is the X-card source line.
	Line int
}

// Instance resolves a hierarchical path ("X1.X2") to its instance, nil
// when no such instance was expanded.
func (h *Hierarchy) Instance(path string) *Instance {
	if h == nil {
		return nil
	}
	if h.byPath == nil {
		h.byPath = make(map[string]*Instance, len(h.Instances))
		for _, in := range h.Instances {
			h.byPath[in.Path] = in
		}
	}
	return h.byPath[path]
}

// AddInstance appends an instance row (netparse expansion hook).
func (h *Hierarchy) AddInstance(in *Instance) {
	h.Instances = append(h.Instances, in)
	if h.byPath != nil {
		h.byPath[in.Path] = in
	}
}

// InstancesOf returns the instances of a master, in expansion order.
func (h *Hierarchy) InstancesOf(master string) []*Instance {
	if h == nil {
		return nil
	}
	var out []*Instance
	for _, in := range h.Instances {
		if in.Master == master {
			out = append(out, in)
		}
	}
	return out
}
