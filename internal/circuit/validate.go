package circuit

import (
	"fmt"
)

// Validate checks the structural health of the circuit before analysis:
// a ground reference must exist, every node must be reachable from some
// element, every non-source node needs at least two connections (a
// one-element node cannot carry current), and the circuit must contain
// at least one element.
//
// Validate returns all problems found, not just the first, so netlist
// authors can fix a file in one pass.
func (c *Circuit) Validate() error {
	var problems []string
	if len(c.elems) == 0 {
		problems = append(problems, "circuit has no elements")
	}
	degree := make([]int, len(c.nodeNames))
	groundTouched := false
	count := func(n NodeID) {
		degree[n]++
		if n == Ground {
			groundTouched = true
		}
	}
	for _, e := range c.elems {
		VisitNodes(e, count)
	}
	if !groundTouched && len(c.elems) > 0 {
		problems = append(problems, "no element connects to ground (node 0)")
	}
	for id := 1; id < len(c.nodeNames); id++ {
		switch degree[id] {
		case 0:
			problems = append(problems, fmt.Sprintf("node %q is declared but unconnected", c.nodeNames[id]))
		case 1:
			problems = append(problems, fmt.Sprintf("node %q has a single connection and cannot carry current", c.nodeNames[id]))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return &ValidationError{Problems: problems}
}

// VisitNodes calls f on each terminal node of e. Unlike Nodes() it
// allocates nothing for the built-in element kinds, which matters for
// whole-deck walks (Validate, the partitioner) on million-element
// netlists.
func VisitNodes(e Element, f func(NodeID)) {
	switch el := e.(type) {
	case *Resistor:
		f(el.A)
		f(el.B)
	case *Capacitor:
		f(el.A)
		f(el.B)
	case *Inductor:
		f(el.A)
		f(el.B)
	case *VSource:
		f(el.Pos)
		f(el.Neg)
	case *ISource:
		f(el.Pos)
		f(el.Neg)
	case *TwoTerm:
		f(el.A)
		f(el.B)
	case *FET:
		f(el.D)
		f(el.G)
		f(el.S)
	case *Island:
		f(el.N)
	case *TunnelJunction:
		f(el.A)
		f(el.B)
	default:
		for _, n := range e.Nodes() {
			f(n)
		}
	}
}

// ValidationError aggregates all structural problems found by Validate.
type ValidationError struct {
	Problems []string
}

// Error joins the problems into one message.
func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return "circuit: " + e.Problems[0]
	}
	msg := fmt.Sprintf("circuit: %d problems:", len(e.Problems))
	for _, p := range e.Problems {
		msg += "\n  - " + p
	}
	return msg
}
