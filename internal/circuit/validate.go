package circuit

import (
	"fmt"
)

// Validate checks the structural health of the circuit before analysis:
// a ground reference must exist, every node must be reachable from some
// element, every non-source node needs at least two connections (a
// one-element node cannot carry current), and the circuit must contain
// at least one element.
//
// Validate returns all problems found, not just the first, so netlist
// authors can fix a file in one pass.
func (c *Circuit) Validate() error {
	var problems []string
	if len(c.elems) == 0 {
		problems = append(problems, "circuit has no elements")
	}
	degree := make([]int, len(c.nodeNames))
	groundTouched := false
	for _, e := range c.elems {
		for _, n := range e.Nodes() {
			degree[n]++
			if n == Ground {
				groundTouched = true
			}
		}
	}
	if !groundTouched && len(c.elems) > 0 {
		problems = append(problems, "no element connects to ground (node 0)")
	}
	for id := 1; id < len(c.nodeNames); id++ {
		switch degree[id] {
		case 0:
			problems = append(problems, fmt.Sprintf("node %q is declared but unconnected", c.nodeNames[id]))
		case 1:
			problems = append(problems, fmt.Sprintf("node %q has a single connection and cannot carry current", c.nodeNames[id]))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	return &ValidationError{Problems: problems}
}

// ValidationError aggregates all structural problems found by Validate.
type ValidationError struct {
	Problems []string
}

// Error joins the problems into one message.
func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return "circuit: " + e.Problems[0]
	}
	msg := fmt.Sprintf("circuit: %d problems:", len(e.Problems))
	for _, p := range e.Problems {
		msg += "\n  - " + p
	}
	return msg
}
