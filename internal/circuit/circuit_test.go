package circuit

import (
	"strings"
	"testing"

	"nanosim/internal/device"
)

func TestNodeInterning(t *testing.T) {
	c := New("t")
	a := c.Node("in")
	b := c.Node("in")
	if a != b {
		t.Error("same name produced different nodes")
	}
	if c.Node("0") != Ground || c.Node("gnd") != Ground || c.Node("GND") != Ground {
		t.Error("ground aliases broken")
	}
	if c.NumNodes() != 2 { // ground + in
		t.Errorf("NumNodes = %d, want 2", c.NumNodes())
	}
	if c.NodeName(a) != "in" || c.NodeName(Ground) != "0" {
		t.Error("NodeName wrong")
	}
	if !strings.HasPrefix(c.NodeName(NodeID(99)), "node#") {
		t.Error("out-of-range NodeName should be synthetic")
	}
}

func TestBuilderAndLookup(t *testing.T) {
	c := New("rc")
	r, err := c.AddResistor("R1", "in", "out", 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Conductance() != 1e-3 {
		t.Error("Conductance wrong")
	}
	if _, err := c.AddCapacitor("C1", "out", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVSource("V1", "in", "0", device.DC(5)); err != nil {
		t.Fatal(err)
	}
	if c.Element("R1") == nil || c.Element("ZZ") != nil {
		t.Error("Element lookup wrong")
	}
	if len(c.Elements()) != 3 {
		t.Errorf("Elements = %d", len(c.Elements()))
	}
	names := c.NodeNames()
	if len(names) != 2 || names[0] != "in" || names[1] != "out" {
		t.Errorf("NodeNames = %v", names)
	}
	if !strings.Contains(c.String(), "R1") {
		t.Error("String missing element")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := New("t")
	if _, err := c.AddResistor("R1", "a", "0", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResistor("R1", "b", "0", 1); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestValueValidation(t *testing.T) {
	c := New("t")
	if _, err := c.AddResistor("R1", "a", "0", 0); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := c.AddResistor("R2", "a", "0", -5); err == nil {
		t.Error("R<0 accepted")
	}
	if _, err := c.AddCapacitor("C1", "a", "0", 0); err == nil {
		t.Error("C=0 accepted")
	}
	if _, err := c.AddInductor("L1", "a", "0", -1); err == nil {
		t.Error("L<0 accepted")
	}
	if _, err := c.AddVSource("V1", "a", "0", nil); err == nil {
		t.Error("nil waveform accepted")
	}
	if _, err := c.AddISource("I1", "a", "0", nil); err == nil {
		t.Error("nil waveform accepted")
	}
	if _, err := c.AddDevice("N1", "a", "0", nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := c.AddFET("M1", "d", "g", "s", nil); err == nil {
		t.Error("nil FET model accepted")
	}
}

func TestElementNodes(t *testing.T) {
	c := New("t")
	f, err := c.AddFET("M1", "d", "g", "s", device.NewNMOS())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Nodes()) != 3 {
		t.Error("FET should expose 3 nodes")
	}
	d, err := c.AddDevice("N1", "d", "0", device.NewRTD())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes()) != 2 || d.Name() != "N1" {
		t.Error("TwoTerm shape wrong")
	}
	l, err := c.AddInductor("L1", "d", "s", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "L1" {
		t.Error("inductor name")
	}
	i, err := c.AddISource("I1", "d", "0", device.DC(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if i.Name() != "I1" {
		t.Error("isource name")
	}
}

func TestValidate(t *testing.T) {
	// Healthy RC divider.
	c := New("ok")
	c.AddVSource("V1", "in", "0", device.DC(1))
	c.AddResistor("R1", "in", "out", 1e3)
	c.AddCapacitor("C1", "out", "0", 1e-12)
	if err := c.Validate(); err != nil {
		t.Errorf("healthy circuit rejected: %v", err)
	}

	// Empty circuit.
	if err := New("empty").Validate(); err == nil {
		t.Error("empty circuit accepted")
	}

	// No ground.
	ng := New("noground")
	ng.AddResistor("R1", "a", "b", 1e3)
	ng.AddResistor("R2", "b", "a", 1e3)
	if err := ng.Validate(); err == nil {
		t.Error("groundless circuit accepted")
	}

	// Dangling node.
	dg := New("dangling")
	dg.AddVSource("V1", "in", "0", device.DC(1))
	dg.AddResistor("R1", "in", "nowhere", 1e3)
	err := dg.Validate()
	if err == nil {
		t.Fatal("dangling node accepted")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(ve.Problems) == 0 || !strings.Contains(ve.Error(), "nowhere") {
		t.Errorf("problems = %v", ve.Problems)
	}

	// Declared-but-unused node.
	du := New("unused")
	du.Node("ghost")
	du.AddVSource("V1", "in", "0", device.DC(1))
	du.AddResistor("R1", "in", "0", 1e3)
	if err := du.Validate(); err == nil {
		t.Error("ghost node accepted")
	}
}

func TestValidationErrorSingle(t *testing.T) {
	e := &ValidationError{Problems: []string{"p1"}}
	if !strings.Contains(e.Error(), "p1") || strings.Contains(e.Error(), "problems") {
		t.Errorf("single-problem message: %q", e.Error())
	}
	e2 := &ValidationError{Problems: []string{"p1", "p2"}}
	if !strings.Contains(e2.Error(), "2 problems") {
		t.Errorf("multi-problem message: %q", e2.Error())
	}
}
