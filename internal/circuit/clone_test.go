package circuit

import (
	"testing"

	"nanosim/internal/device"
)

// buildCloneFixture assembles a circuit exercising every element kind.
func buildCloneFixture(t *testing.T) *Circuit {
	t.Helper()
	c := New("clone fixture")
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.AddVSource("V1", "in", "0", device.DC(1.2))
	mustOK(err)
	_, err = c.AddResistor("R1", "in", "d", 600)
	mustOK(err)
	_, err = c.AddCapacitor("CD", "d", "0", 10e-15)
	mustOK(err)
	_, err = c.AddInductor("L1", "d", "x", 1e-9)
	mustOK(err)
	_, err = c.AddISource("I1", "0", "x", device.DC(1e-6))
	mustOK(err)
	_, err = c.AddDevice("N1", "d", "0", device.NewRTD())
	mustOK(err)
	m, err := device.NewMOSFET(device.NMOS, 5e-3, 1, 1, 0.5)
	mustOK(err)
	_, err = c.AddFET("M1", "d", "in", "0", m)
	mustOK(err)
	return c
}

func TestCloneIsDeep(t *testing.T) {
	orig := buildCloneFixture(t)
	cl := orig.Clone()

	if cl.NumNodes() != orig.NumNodes() || len(cl.Elements()) != len(orig.Elements()) {
		t.Fatalf("clone shape mismatch: %d/%d nodes, %d/%d elements",
			cl.NumNodes(), orig.NumNodes(), len(cl.Elements()), len(orig.Elements()))
	}
	for i, e := range orig.Elements() {
		ce := cl.Elements()[i]
		if e.Name() != ce.Name() {
			t.Fatalf("element %d order changed: %q vs %q", i, e.Name(), ce.Name())
		}
		if e == ce {
			t.Errorf("element %q shared between clone and original", e.Name())
		}
	}

	// Mutating clone values must not write through.
	cl.Element("R1").(*Resistor).R = 1e6
	if r := orig.Element("R1").(*Resistor).R; r != 600 {
		t.Errorf("clone resistor mutation leaked: R=%g", r)
	}
	rtd := cl.Element("N1").(*TwoTerm).Model.(*device.RTD)
	if err := rtd.SetParam("A", rtd.A*3); err != nil {
		t.Fatal(err)
	}
	origRTD := orig.Element("N1").(*TwoTerm).Model.(*device.RTD)
	if origRTD.I(0.3) == rtd.I(0.3) {
		t.Error("clone RTD perturbation leaked into original")
	}
	fet := cl.Element("M1").(*FET).Model
	if err := fet.SetParam("VTO", 0.9); err != nil {
		t.Fatal(err)
	}
	if orig.Element("M1").(*FET).Model.Vth != 0.5 {
		t.Error("clone FET perturbation leaked into original")
	}
}

func TestCloneNodeTablesIndependent(t *testing.T) {
	orig := buildCloneFixture(t)
	cl := orig.Clone()
	if err := cl.Validate(); err != nil {
		t.Errorf("clone does not validate: %v", err)
	}
	n0 := orig.NumNodes()
	cl.Node("fresh")
	if orig.NumNodes() != n0 {
		t.Error("adding a node to the clone grew the original")
	}
	if cl.Node("d") != orig.Node("d") {
		t.Error("clone renumbered existing nodes")
	}
}
