package circuit

import "fmt"

// Island marks a node as a Coulomb-blockade island: a conductor whose
// charge is quantized in units of the electron charge. The single-electron
// engine (internal/setsim) tracks an integer excess-electron count per
// island and assembles the island capacitance matrix from the tunnel
// junctions and ordinary capacitors attached to the node. Islands are
// invisible to the SWEC/MNA engines; a deck mixing them with .tran/.op
// analyses fails when the stamper meets an element it cannot stamp.
type Island struct {
	name string
	// N is the marked node.
	N NodeID
	// Q0 is the fractional background (offset) charge in units of e;
	// SET behaviour is periodic in Q0 with period 1.
	Q0 float64
	// C0 is an optional stray self-capacitance to ground in farads
	// (>= 0), on top of whatever junctions and capacitors contribute.
	C0 float64
}

// Name implements Element.
func (il *Island) Name() string { return il.name }

// Nodes implements Element.
func (il *Island) Nodes() []NodeID { return []NodeID{il.N} }

// AddIsland marks the named node as a single-electron island with
// background charge q0 (units of e) and stray ground capacitance c0.
func (c *Circuit) AddIsland(name, node string, q0, c0 float64) (*Island, error) {
	if c0 < 0 {
		return nil, fmt.Errorf("circuit: island %q must have C0 >= 0, got %g", name, c0)
	}
	il := &Island{name: name, N: c.Node(node), Q0: q0, C0: c0}
	if il.N == Ground {
		return nil, fmt.Errorf("circuit: island %q cannot be the ground node", name)
	}
	return il, c.add(il)
}

// TunnelJunction is an ultrasmall metal-insulator-metal junction: a
// capacitance C in parallel with a stochastic tunnel element of
// resistance RT. At least one terminal is normally an Island; a junction
// between two non-island nodes is a plain Poissonian shot-noise junction.
// Like Island it is owned by the single-electron engine, not by MNA.
type TunnelJunction struct {
	name string
	A, B NodeID
	// C is the junction capacitance in farads (> 0).
	C float64
	// RT is the tunnel resistance in ohms (> 0). Orthodox theory wants
	// RT >> RK = h/e^2 ~ 25.8 kOhm for well-defined charge states.
	RT float64
}

// Name implements Element.
func (j *TunnelJunction) Name() string { return j.name }

// Nodes implements Element.
func (j *TunnelJunction) Nodes() []NodeID { return []NodeID{j.A, j.B} }

// AddTunnelJunction adds a tunnel junction between named nodes.
func (c *Circuit) AddTunnelJunction(name, a, b string, farads, rt float64) (*TunnelJunction, error) {
	if farads <= 0 {
		return nil, fmt.Errorf("circuit: tunnel junction %q must have C > 0, got %g", name, farads)
	}
	if rt <= 0 {
		return nil, fmt.Errorf("circuit: tunnel junction %q must have RT > 0, got %g", name, rt)
	}
	j := &TunnelJunction{name: name, A: c.Node(a), B: c.Node(b), C: farads, RT: rt}
	if j.A == j.B {
		return nil, fmt.Errorf("circuit: tunnel junction %q shorts node to itself", name)
	}
	return j, c.add(j)
}
