package exp

import (
	"fmt"
	"math"

	"nanosim/internal/circuit"
	"nanosim/internal/core"
	"nanosim/internal/device"
	"nanosim/internal/randx"
	"nanosim/internal/sde"
	"nanosim/internal/stats"
)

func init() {
	register(Entry{
		ID:    "ext-grid",
		Title: "Extension: power-grid voltage drop under random current draws",
		Paper: "§4 motivation (refs [11][12]): transient drop matters even when the average is fine",
		Run:   runExtGrid,
	})
	register(Entry{
		ID:    "ext-hysteresis",
		Title: "Extension: bistable RTD divider hysteresis (up vs down sweep)",
		Paper: "extends Fig 7(a): the memory effect RTD logic exploits",
		Run:   runExtHysteresis,
	})
	register(Entry{
		ID:    "ext-variation",
		Title: "Extension: device parameter variation Monte Carlo",
		Paper: "abstract: nanodevices exhibit 'uncertain properties ... chaotic performance'",
		Run:   runExtVariation,
	})
	register(Entry{
		ID:    "abl-method",
		Title: "Ablation: backward Euler vs trapezoidal companions",
		Paper: "integration-order extension beyond the paper's BE scheme",
		Run:   runAblMethod,
	})
	register(Entry{
		ID:    "ext-milstein",
		Title: "Extension: Milstein vs Euler-Maruyama strong convergence",
		Paper: "order-1 refinement of the paper's §4.2 integrator",
		Run:   runExtMilstein,
	})
}

// powerGrid builds an n-segment RC ladder (a one-dimensional power rail)
// with a noisy current draw at every tap — the workload of the paper's
// refs [11] and [12].
func powerGrid(n int, sigma float64) *circuit.Circuit {
	c := circuit.New("power grid rail")
	c.AddVSource("VDD", "p0", "0", device.DC(1.2))
	for i := 1; i <= n; i++ {
		prev := fmt.Sprintf("p%d", i-1)
		cur := fmt.Sprintf("p%d", i)
		c.AddResistor("R"+cur, prev, cur, 0.5)
		c.AddCapacitor("C"+cur, cur, "0", 1e-12)
		is, _ := c.AddISource("I"+cur, cur, "0", device.DC(2e-3))
		is.NoiseSigma = sigma
	}
	return c
}

func runExtGrid(cfg Config) (*Result, error) {
	r := newReport(cfg, "Extension: power-grid transient voltage drop",
		"10-segment rail, 2 mA average draw per tap, white-noise uncertainty")
	const n = 10
	const sigma = 2e-9
	paths := 300
	if cfg.Quick {
		paths = 80
	}
	far := fmt.Sprintf("v(p%d)", n)
	ens, err := sde.Ensemble(powerGrid(n, sigma), sde.EnsembleOptions{
		Base:   sde.Options{TStop: 10e-9, Steps: 800, Seed: cfg.Seed},
		Paths:  paths,
		Signal: far,
		// Measure extrema after the rail has charged (several tau).
		StatsFrom: 0.5,
	})
	if err != nil {
		return nil, err
	}
	r.plot(ens.Mean, ens.Lo95)
	// Average drop at the far end: sum over taps of accumulated currents.
	// Analytic DC: node k drop = I*R*(sum_{j<=k}(n-j+1)) for uniform draw.
	expectedDrop := 0.0
	for k := 1; k <= n; k++ {
		expectedDrop += 0.5 * 2e-3 * float64(n-k+1)
	}
	meanFar := ens.Mean.SettleValue(0.3)
	r.finding("mean_far_v", meanFar, "far-end mean: %.4f V (analytic DC: %.4f V)\n",
		meanFar, 1.2-expectedDrop)
	r.finding("mean_err", abs(meanFar-(1.2-expectedDrop)), "")
	// The §4 point: the *average* may meet spec while transient
	// excursions violate it.
	worstQ, err := stats.Quantile(ens.MinValues, 0.01)
	if err != nil {
		return nil, err
	}
	r.finding("worst_1pct_v", worstQ, "1%% worst transient excursion: %.4f V\n", worstQ)
	margin := meanFar - worstQ
	r.finding("transient_margin", margin,
		"margin between average and 1%%-worst transient: %.4f V — the failure mode\n", margin)
	r.printf("an average-only analysis cannot see (paper §4).\n")
	return r.done(), nil
}

func runExtHysteresis(cfg Config) (*Result, error) {
	r := newReport(cfg, "Extension: RTD divider hysteresis",
		"R = 600 Ω > NDR critical resistance: the up and down sweeps take different branches")
	n := 201
	if cfg.Quick {
		n = 101
	}
	up, err := core.Sweep(RTDDivider(device.DC(0), 600), "V1", 0, 1.5, n, "N1", core.DCOptions{})
	if err != nil {
		return nil, err
	}
	down, err := core.Sweep(RTDDivider(device.DC(0), 600), "V1", 1.5, 0, n, "N1", core.DCOptions{})
	if err != nil {
		return nil, err
	}
	vu := up.Waves.Get("v(dev)")
	vd := down.Waves.Get("v(dev)")
	vu.Name = "up-sweep"
	// The down sweep records against a negated axis; mirror it back for
	// comparison at matching bias points.
	worst := 0.0
	biasAt := 0.0
	for i, axis := range vu.T {
		bias := axis
		dv := math.Abs(vu.V[i] - vd.At(-bias))
		if dv > worst {
			worst, biasAt = dv, bias
		}
	}
	r.plot(vu)
	r.finding("hysteresis_v", worst,
		"maximum branch separation: %.3f V at bias %.3f V\n", worst, biasAt)
	r.finding("hysteresis_present", b2f(worst > 0.2),
		"bistable window present: %v (RTD memory, the MOBILE latch mechanism)\n", worst > 0.2)
	return r.done(), nil
}

// runExtVariation predates internal/vary and keeps its hand-rolled
// serial loop so its findings stay comparable PR to PR; the subsystem
// route (parallel, solver-reusing, netlist-driven) is the vary-yield
// experiment in fig_vary.go.
func runExtVariation(cfg Config) (*Result, error) {
	r := newReport(cfg, "Extension: process variation Monte Carlo",
		"RTD resonance parameters vary +/-5%; inverter static levels respond")
	trials := 200
	if cfg.Quick {
		trials = 60
	}
	s := randx.New(cfg.Seed)
	var hi, lo stats.Running
	failures := 0
	for k := 0; k < trials; k++ {
		// Perturb the driver and load independently: A (peak current)
		// and C (resonance position) at 5% sigma, truncated at 3 sigma.
		mkRTD := func() *device.RTD {
			rtd := device.NewRTD()
			rtd.A *= 1 + 0.05*clamp3(s.Norm())
			rtd.C *= 1 + 0.05*clamp3(s.Norm())
			return rtd
		}
		c := circuit.New("mc inverter")
		c.AddVSource("VDD", "vdd", "0", device.DC(VDDInverter))
		c.AddVSource("VIN", "in", "0", device.DC(0))
		c.AddDevice("RL", "vdd", "out", mkRTD().WithArea(1.5))
		c.AddDevice("RD", "out", "0", mkRTD())
		m, _ := device.NewMOSFET(device.NMOS, 5e-3, 1, 1, 0.5)
		c.AddFET("M1", "out", "in", "0", m)
		c.AddCapacitor("CL", "out", "0", 20e-15)
		c.AddCapacitor("CIN", "in", "0", 1e-15)
		opHi, err := core.OperatingPoint(c, core.DCOptions{})
		if err != nil {
			failures++
			continue
		}
		vOutHi := opHi.X[int(c.Node("out"))-1]
		// Flip the input.
		c.Element("VIN").(*circuit.VSource).W = device.DC(VDDInverter)
		opLo, err := core.OperatingPoint(c, core.DCOptions{})
		if err != nil {
			failures++
			continue
		}
		vOutLo := opLo.X[int(c.Node("out"))-1]
		hi.Push(vOutHi)
		lo.Push(vOutLo)
		if vOutHi-vOutLo < 0.4 {
			failures++
		}
	}
	r.finding("trials", float64(trials), "trials: %d, functional failures: %d\n", trials, failures)
	r.finding("failures", float64(failures), "")
	r.finding("hi_mean", hi.Mean(), "output high: %.3f +/- %.3f V\n", hi.Mean(), hi.Std())
	r.finding("hi_std", hi.Std(), "")
	r.finding("lo_mean", lo.Mean(), "output low:  %.3f +/- %.3f V\n", lo.Mean(), lo.Std())
	r.finding("yield", 1-float64(failures)/float64(trials),
		"noise-margin yield (swing > 0.4 V): %.1f%%\n", 100*(1-float64(failures)/float64(trials)))
	return r.done(), nil
}

func clamp3(x float64) float64 {
	if x > 3 {
		return 3
	}
	if x < -3 {
		return -3
	}
	return x
}

func runAblMethod(cfg Config) (*Result, error) {
	r := newReport(cfg, "Ablation: backward Euler vs trapezoidal companions",
		"fixed-grid convergence on the unit-step RC charge")
	rcErr := func(h float64, trap bool) (float64, error) {
		c := circuit.New("rc")
		c.AddVSource("V1", "in", "0", device.DC(1))
		c.AddResistor("R1", "in", "out", 1e3)
		c.AddCapacitor("C1", "out", "0", 1e-9)
		res, err := core.Transient(c, core.Options{
			TStop: 3e-6, FixedStep: true, HInit: h, Trapezoidal: trap})
		if err != nil {
			return 0, err
		}
		out := res.Waves.Get("v(out)")
		worst := 0.0
		for i, tv := range out.T {
			want := 1 - math.Exp(-tv/1e-6)
			if d := math.Abs(out.V[i] - want); d > worst {
				worst = d
			}
		}
		return worst, nil
	}
	hs := []float64{100e-9, 50e-9, 25e-9, 12.5e-9}
	var tbl [][]string
	var lh, lb, lt []float64
	for _, h := range hs {
		be, err := rcErr(h, false)
		if err != nil {
			return nil, err
		}
		tr, err := rcErr(h, true)
		if err != nil {
			return nil, err
		}
		tbl = append(tbl, []string{
			fmt.Sprintf("%.4g", h), fmt.Sprintf("%.3g", be), fmt.Sprintf("%.3g", tr)})
		lh = append(lh, math.Log(h))
		lb = append(lb, math.Log(be))
		lt = append(lt, math.Log(tr))
	}
	r.table([]string{"step h", "BE max error", "TR max error"}, tbl)
	beo, _, err := stats.LinearFit(lh, lb)
	if err != nil {
		return nil, err
	}
	tro, _, err := stats.LinearFit(lh, lt)
	if err != nil {
		return nil, err
	}
	r.finding("be_order", beo, "measured orders: BE %.2f (theory 1), TR %.2f (theory 2)\n", beo, tro)
	r.finding("tr_order", tro, "")
	return r.done(), nil
}

func runExtMilstein(cfg Config) (*Result, error) {
	r := newReport(cfg, "Extension: Milstein vs Euler-Maruyama",
		"strong error on GBM, same Wiener paths")
	g := sde.GBM{Lambda: 2, Sigma: 1, X0: 1}
	strides := []int{1, 2, 4, 8, 16}
	paths := 400
	if cfg.Quick {
		paths = 120
	}
	em, err := sde.StrongErrorOf(g, sde.EulerMaruyama, 1, 512, paths, strides, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mil, err := sde.StrongErrorOf(g, sde.MilsteinScheme, 1, 512, paths, strides, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var tbl [][]string
	var lh, le, lm []float64
	for i, st := range strides {
		h := float64(st) / 512
		tbl = append(tbl, []string{
			fmt.Sprintf("%.4g", h), fmt.Sprintf("%.3g", em[i]), fmt.Sprintf("%.3g", mil[i])})
		lh = append(lh, math.Log(h))
		le = append(le, math.Log(em[i]))
		lm = append(lm, math.Log(mil[i]))
	}
	r.table([]string{"step h", "EM error", "Milstein error"}, tbl)
	emo, _, err := stats.LinearFit(lh, le)
	if err != nil {
		return nil, err
	}
	milo, _, err := stats.LinearFit(lh, lm)
	if err != nil {
		return nil, err
	}
	r.finding("em_order", emo, "strong orders: EM %.2f (theory 0.5), Milstein %.2f (theory 1)\n", emo, milo)
	r.finding("milstein_order", milo, "")
	return r.done(), nil
}
