package exp

import "testing"

func TestExtGrid(t *testing.T) {
	res := quick(t, "ext-grid")
	// Mean matches the analytic DC drop.
	if res.Findings["mean_err"] > 0.01 {
		t.Errorf("grid mean error %g V", res.Findings["mean_err"])
	}
	// The transient margin is the experiment's point: it must be
	// strictly positive (excursions below the average exist).
	if res.Findings["transient_margin"] <= 0 {
		t.Error("no transient margin measured — the §4 motivation is lost")
	}
}

func TestExtHysteresis(t *testing.T) {
	res := quick(t, "ext-hysteresis")
	if res.Findings["hysteresis_present"] != 1 {
		t.Error("bistable divider showed no hysteresis")
	}
	if res.Findings["hysteresis_v"] < 0.2 {
		t.Errorf("hysteresis window %g V too small", res.Findings["hysteresis_v"])
	}
}

func TestExtVariation(t *testing.T) {
	res := quick(t, "ext-variation")
	if res.Findings["trials"] < 50 {
		t.Error("too few trials")
	}
	// The nominal design has ~0.9 V of swing; 5% parameter noise should
	// leave most samples functional.
	if res.Findings["yield"] < 0.7 {
		t.Errorf("yield %.2f implausibly low", res.Findings["yield"])
	}
	// Variation must actually spread the outputs.
	if res.Findings["hi_std"] <= 0 {
		t.Error("no spread in output-high distribution")
	}
}

func TestAblMethod(t *testing.T) {
	res := quick(t, "abl-method")
	if o := res.Findings["be_order"]; o < 0.8 || o > 1.3 {
		t.Errorf("BE order %.2f, want ~1", o)
	}
	if o := res.Findings["tr_order"]; o < 1.7 || o > 2.3 {
		t.Errorf("TR order %.2f, want ~2", o)
	}
}

func TestExtMilstein(t *testing.T) {
	res := quick(t, "ext-milstein")
	if o := res.Findings["em_order"]; o < 0.3 || o > 0.7 {
		t.Errorf("EM order %.2f, want ~0.5", o)
	}
	if o := res.Findings["milstein_order"]; o < 0.8 || o > 1.2 {
		t.Errorf("Milstein order %.2f, want ~1", o)
	}
}

func TestExtVTC(t *testing.T) {
	res := quick(t, "ext-vtc")
	if res.Findings["voh"] < 0.9 {
		t.Errorf("VOH = %g, want ~1.07", res.Findings["voh"])
	}
	if res.Findings["vol"] > 0.35 {
		t.Errorf("VOL = %g, want ~0.18", res.Findings["vol"])
	}
	if res.Findings["vm"] < 0 || res.Findings["vm"] > 1.2 {
		t.Errorf("VM = %g out of range", res.Findings["vm"])
	}
	if res.Findings["regenerative"] != 1 {
		t.Error("inverter gain below 1 — not a logic gate")
	}
}
