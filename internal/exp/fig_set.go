package exp

import (
	"fmt"
	"math"

	"nanosim/internal/circuit"
	"nanosim/internal/device"
	"nanosim/internal/setsim"
	"nanosim/internal/units"
	"nanosim/internal/wave"
)

func init() {
	register(Entry{
		ID:    "set-diamond",
		Title: "Coulomb diamonds of a single-electron transistor (kMC + master equation)",
		Paper: "§6 outlook: SWEC co-simulation of non-classical device engines — orthodox-theory SET with gate period e/Cg",
		Run:   runSETDiamond,
	})
}

// SET transistor geometry shared by the experiment and its assertions:
// two 1 aF junctions plus a 2 aF gate capacitor, so the Coulomb
// oscillation period is e/Cg = 80.1 mV and the charging scale
// e/Csigma = 40 mV dwarfs kT at 4.2 K.
const (
	setCj = 1e-18
	setCg = 2e-18
	setRT = 1e6
)

// SETTransistor builds the canonical SET: source grounded through J2,
// drain electrode through J1, capacitive gate.
func SETTransistor() *circuit.Circuit {
	c := circuit.New("SET transistor")
	must := func(_ any, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.AddVSource("Vg", "g", "0", device.DC(0)))
	must(c.AddVSource("Vd", "d", "0", device.DC(0)))
	must(c.AddCapacitor("Cg", "m", "g", setCg))
	must(c.AddIsland("ISL_m", "m", 0, 0))
	must(c.AddTunnelJunction("J1", "d", "m", setCj, setRT))
	must(c.AddTunnelJunction("J2", "m", "0", setCj, setRT))
	return c
}

func runSETDiamond(cfg Config) (*Result, error) {
	r := newReport(cfg, "Coulomb diamonds: SET drain current over the (Vg, Vd) plane",
		"single-electron engine (internal/setsim): orthodox tunneling rates, master-equation map, kMC cross-check")

	ePeriod := units.Q / setCg // 80.1 mV
	gPts := 126
	if cfg.Quick {
		gPts = 84 // 3 mV grid still resolves three oscillation peaks
	}
	mp, err := setsim.Map(SETTransistor(), setsim.MapOptions{
		Gate: "Vg", GFrom: 0, GTo: 0.25, GPoints: gPts,
		Drain: "Vd", DFrom: 0.004, DTo: 0.016, DPoints: 3,
	})
	if err != nil {
		return nil, fmt.Errorf("set-diamond map: %w", err)
	}

	// Gate periodicity: peak spacing along the lowest drain bias row.
	period, err := mp.GatePeriod(0)
	if err != nil {
		return nil, fmt.Errorf("set-diamond period: %w", err)
	}
	relErr := math.Abs(period-ePeriod) / ePeriod
	r.finding("gate_period_mv", period*1e3, "Coulomb oscillation period: %.2f mV (theory e/Cg = %.2f mV)\n",
		period*1e3, ePeriod*1e3)
	r.finding("gate_period_rel_err", relErr, "period error vs e/Cg: %.2f%%\n", 100*relErr)

	// Blockade depth: at Vg=0 the island is in deep blockade; at the
	// degeneracy point Vg = e/2Cg the current peaks.
	row := mp.I[0]
	valley, peak := math.Abs(row[0]), 0.0
	for _, i := range row {
		peak = math.Max(peak, math.Abs(i))
	}
	suppression := math.Inf(1)
	if valley > 0 {
		suppression = peak / valley
	}
	r.finding("blockade_suppression", suppression,
		"blockade suppression at vd=%.1f mV: peak %.3g A / valley %.3g A = %.3gx\n",
		mp.Drain[0]*1e3, peak, valley, suppression)

	// kMC cross-check: the stochastic engine reproduces the exact
	// master-equation current at the degeneracy peak.
	peakG := 0
	for g, i := range row {
		if math.Abs(i) > math.Abs(row[peakG]) {
			peakG = g
		}
	}
	window := 400e-9
	if cfg.Quick {
		window = 100e-9
	}
	lo := math.Max(0, mp.Gate[peakG]-0.004)
	km, err := setsim.Map(SETTransistor(), setsim.MapOptions{
		Gate: "Vg", GFrom: lo, GTo: lo + 0.008, GPoints: 3,
		Drain: "Vd", DFrom: mp.Drain[0], DTo: mp.Drain[0], DPoints: 1,
		Method: "kmc", Window: window, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("set-diamond kmc: %w", err)
	}
	me, err := setsim.Map(SETTransistor(), setsim.MapOptions{
		Gate: "Vg", GFrom: lo, GTo: lo + 0.008, GPoints: 3,
		Drain: "Vd", DFrom: mp.Drain[0], DTo: mp.Drain[0], DPoints: 1,
	})
	if err != nil {
		return nil, err
	}
	gap := math.Abs(km.I[0][1]-me.I[0][1]) / math.Abs(me.I[0][1])
	r.finding("kmc_me_rel_gap", gap,
		"kMC vs master equation at the peak: %.3g A vs %.3g A (%.1f%% gap, %s window)\n",
		km.I[0][1], me.I[0][1], 100*gap, fmtSeconds(window))

	// Render the oscillation rows (one per drain bias) as the diamond
	// cross-sections.
	var series []*wave.Series
	for _, name := range mp.Waves.Names() {
		series = append(series, mp.Waves.Get(name))
	}
	r.plot(series...)
	r.printf("Reproduce: nanobench -exp set-diamond, or nanosim testdata/set_transistor.sp\n")
	return r.done(), nil
}

// fmtSeconds renders a short duration in engineering units.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1e-6:
		return fmt.Sprintf("%gus", s*1e6)
	case s >= 1e-9:
		return fmt.Sprintf("%gns", s*1e9)
	default:
		return fmt.Sprintf("%gps", s*1e12)
	}
}
