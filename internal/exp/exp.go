package exp

import (
	"fmt"
	"sort"
	"strings"

	"nanosim/internal/flop"
	"nanosim/internal/wave"
)

// Config tunes experiment execution.
type Config struct {
	// Quick shrinks workloads for test runs (fewer points/paths).
	Quick bool
	// Seed drives every stochastic experiment.
	Seed uint64
	// PlotWidth and PlotHeight size the ASCII charts (defaults 72x18).
	PlotWidth, PlotHeight int
}

// WithDefaults returns the config with defaults filled in; exported for
// callers that iterate the registry and invoke Entry.Run directly.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 20050307 // DATE'05 conference date
	}
	if c.PlotWidth <= 0 {
		c.PlotWidth = 72
	}
	if c.PlotHeight <= 0 {
		c.PlotHeight = 18
	}
	return c
}

// Result is an experiment outcome.
type Result struct {
	// Findings holds machine-checkable measured values.
	Findings map[string]float64
	// Text is the rendered human-readable report.
	Text string
}

// Runner executes one experiment.
type Runner func(cfg Config) (*Result, error)

// Entry describes one registered experiment.
type Entry struct {
	// ID is the lookup key ("fig5", "table1", "abl-ito", ...).
	ID string
	// Title is a one-line description.
	Title string
	// Paper cites what the paper artifact shows.
	Paper string
	// Run executes the experiment.
	Run Runner
}

var registry []Entry

func register(e Entry) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Entry { return append([]Entry(nil), registry...) }

// Get returns the experiment with the given ID.
func Get(id string) (Entry, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Result, error) {
	e, ok := Get(id)
	if !ok {
		var ids []string
		for _, e := range registry {
			ids = append(ids, e.ID)
		}
		sort.Strings(ids)
		return nil, fmt.Errorf("exp: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
	}
	return e.Run(cfg.withDefaults())
}

// report accumulates the text output of an experiment.
type report struct {
	b        strings.Builder
	findings map[string]float64
	cfg      Config
}

func newReport(cfg Config, title, paper string) *report {
	r := &report{findings: make(map[string]float64), cfg: cfg}
	fmt.Fprintf(&r.b, "== %s ==\n", title)
	if paper != "" {
		fmt.Fprintf(&r.b, "paper: %s\n\n", paper)
	}
	return r
}

func (r *report) printf(format string, args ...any) {
	fmt.Fprintf(&r.b, format, args...)
}

func (r *report) finding(key string, v float64, format string, args ...any) {
	r.findings[key] = v
	fmt.Fprintf(&r.b, format, args...)
}

// plot renders series into the report.
func (r *report) plot(series ...*wave.Series) {
	if err := wave.PlotSeries(&r.b, r.cfg.PlotWidth, r.cfg.PlotHeight, series...); err != nil {
		fmt.Fprintf(&r.b, "(plot error: %v)\n", err)
	}
	r.b.WriteByte('\n')
}

// table renders an aligned text table.
func (r *report) table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		r.printf("| %s |\n", strings.Join(parts, " | "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	r.b.WriteByte('\n')
}

func (r *report) done() *Result {
	return &Result{Findings: r.findings, Text: r.b.String()}
}

// fmtFlops renders a flop snapshot compactly.
func fmtFlops(s flop.Snapshot) string {
	return fmt.Sprintf("%d flops (%d solves, %d device evals)", s.Total(), s.Solves, s.DeviceEvals)
}

// seriesFromXY builds a wave.Series from x/y samples with strictly
// increasing x (points violating monotonicity are dropped).
func seriesFromXY(name string, xs, ys []float64) *wave.Series {
	s := wave.NewSeries(name, len(xs))
	for i := range xs {
		if err := s.Append(xs[i], ys[i]); err != nil {
			continue
		}
	}
	return s
}
