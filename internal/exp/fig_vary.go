package exp

import (
	"fmt"

	"nanosim/internal/core"
	"nanosim/internal/device"
	"nanosim/internal/vary"
)

func init() {
	register(Entry{
		ID:    "vary-yield",
		Title: "Yield vs RTD peak-current spread on the FET-RTD inverter",
		Paper: "§1-2 motivation: nanodevice parameter uncertainty (RTD peak spread) demands a statistical simulator",
		Run:   runVaryYield,
	})
}

// varyYieldSigmas are the relative RTD peak-current (Schulman A) spreads
// swept by the experiment.
var varyYieldSigmas = []float64{0.01, 0.02, 0.05, 0.08, 0.12}

// varyYieldLimit is the inverter low-state margin spec: with the input
// held high the nominal output settles at 0.181 V, and the cell counts
// as functional only while v(out) stays below this level (~5% above
// nominal) — the noise-margin style spec that makes yield sensitive to
// RTD spread.
const varyYieldLimit = 0.19

func runVaryYield(cfg Config) (*Result, error) {
	r := newReport(cfg, "Yield vs sigma: FET-RTD inverter under RTD peak-current spread",
		"process-variation Monte Carlo (internal/vary); DEV=sigma gauss on every RTD's A, input held high")
	trials := 200
	if cfg.Quick {
		trials = 60
	}
	header := []string{"sigma(A)", "yield", "stderr", "q05 v(out)", "q95 v(out)"}
	var rows [][]string
	var yields []float64
	for _, sigma := range varyYieldSigmas {
		res, err := vary.MonteCarlo(FETRTDInverter(device.DC(1.2)), vary.Options{
			Trials:  trials,
			Seed:    cfg.Seed,
			Specs:   []vary.Spec{{Elem: "RL", Param: "A", Sigma: sigma, Rel: true}, {Elem: "RD", Param: "A", Sigma: sigma, Rel: true}},
			Job:     vary.Job{Analysis: "tran", Tran: core.Options{TStop: 60e-9, HInit: 1e-9}},
			Signals: []string{"v(out)"},
			Limits:  []vary.Limit{{Signal: "v(out)", Stat: "final", Lo: 0, Hi: varyYieldLimit}},
		})
		if err != nil {
			return nil, fmt.Errorf("vary-yield sigma=%g: %w", sigma, err)
		}
		sg := res.Signal("v(out)")
		q05, _ := sg.Quantile(0.05)
		q95, _ := sg.Quantile(0.95)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", sigma*100),
			fmt.Sprintf("%.3f", res.Yield),
			fmt.Sprintf("%.3f", res.YieldSE),
			fmt.Sprintf("%.4f", q05),
			fmt.Sprintf("%.4f", q95),
		})
		yields = append(yields, res.Yield)
	}
	r.table(header, rows)
	r.finding("trials_per_sigma", float64(trials), "Monte Carlo trials per sigma point: %d\n", trials)
	r.finding("yield_sigma_1pct", yields[0], "yield at 1%% spread: %.3f (tight spread: every cell functional)\n", yields[0])
	r.finding("yield_sigma_12pct", yields[len(yields)-1],
		"yield at 12%% spread: %.3f (wide spread erodes the low-state margin)\n", yields[len(yields)-1])
	mono := 1.0
	for i := 1; i < len(yields); i++ {
		if yields[i] > yields[i-1]+1e-9 {
			mono = 0
		}
	}
	r.finding("yield_monotone_nonincreasing", mono,
		"yield is non-increasing in sigma: %v\n", mono == 1)
	r.printf("\nReproduce: nanobench -exp vary-yield (same seed => bit-identical yields at any worker count)\n")
	return r.done(), nil
}
