package exp

import (
	"fmt"
	"math"

	"nanosim/internal/randx"
	"nanosim/internal/sde"
	"nanosim/internal/stats"
	"nanosim/internal/wave"
)

func init() {
	register(Entry{
		ID:    "fig10",
		Title: "EM method vs analytical solution on a noisy parasitic RC",
		Paper: "Fig 10: results from EM method and analytical solution; possible performance peak about 0.6 V in 0-1 ns (node voltage in 1:10 ratio)",
		Run:   runFig10,
	})
	register(Entry{
		ID:    "abl-ito",
		Title: "Ablation: Ito (eq 15) vs Stratonovich (eq 16) sums",
		Paper: "§4.2: the two discretizations give markedly different answers",
		Run:   runAblIto,
	})
	register(Entry{
		ID:    "abl-em",
		Title: "Ablation: EM convergence order and explicit vs drift-implicit stepping",
		Paper: "§4.2 / ref [13]",
		Run:   runAblEM,
	})
}

// fig10Sigma is the Figure 10 noise intensity (A·√s): tuned so the
// 0-1 ns window shows peaks near 0.056 V at the node — ~0.6 V at the
// paper's 1:10 display ratio.
const fig10Sigma = 8e-10

func runFig10(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 10: EM vs analytic on the noisy parasitic RC",
		"true (exact OU transition) solution vs Euler-Maruyama on the same Wiener path")
	// Circuit: R = 1k, C = 1pF, I_DC = 50 µA, noise sigma.
	// The node is an OU process: A = 1/RC = 1e9, mu = R*I = 50 mV,
	// diffusion = sigma/C.
	ou := sde.OU{A: 1e9, Mu: 0.05, Sigma: fig10Sigma / 1e-12, X0: 0}
	const tEnd = 1e-9
	steps := 400
	paths := 400
	if cfg.Quick {
		paths = 100
	}

	// Single-path overlay: EM on a Wiener path vs the exact transition
	// sampled from an independent stream (the "true solution" curve).
	w := randx.NewWiener(randx.New(cfg.Seed), tEnd, steps)
	emPath, err := ou.EM(w, 1)
	if err != nil {
		return nil, err
	}
	exPath, err := ou.ExactPath(randx.New(cfg.Seed+1), w.T)
	if err != nil {
		return nil, err
	}
	em := seriesFromXY("EM path", w.T, emPath)
	ex := seriesFromXY("true solution", w.T, exPath)
	r.plot(em, ex)

	// Ensemble statistics through the *circuit* engine (SWEC+EM), vs the
	// analytic OU mean/std envelope.
	ens, err := sde.Ensemble(NoisyRCNode(fig10Sigma), sde.EnsembleOptions{
		Base:   sde.Options{TStop: tEnd, Steps: steps, Seed: cfg.Seed},
		Paths:  paths,
		Signal: "v(x)",
	})
	if err != nil {
		return nil, err
	}
	anaMean := wave.NewSeries("analytic mean", steps)
	anaHi := wave.NewSeries("analytic +1.96s", steps)
	for j := 0; j <= steps; j++ {
		t := tEnd * float64(j) / float64(steps)
		if j == 0 {
			t = 0
		}
		if err := anaMean.Append(t, ou.Mean(t)); err != nil {
			continue
		}
		anaHi.Append(t, ou.Mean(t)+1.96*ou.Std(t))
	}
	r.plot(ens.Mean, anaMean, ens.Hi95, anaHi)

	// Quantitative agreement at the endpoint.
	meanErr := abs(ens.Mean.Final() - ou.Mean(tEnd))
	stdErr := abs(ens.Std.Final()-ou.Std(tEnd)) / ou.Std(tEnd)
	r.finding("mean_err", meanErr, "ensemble mean error at T: %.4g V (analytic %.4g V)\n", meanErr, ou.Mean(tEnd))
	r.finding("std_rel_err", stdErr, "ensemble std relative error at T: %.2f%%\n", 100*stdErr)

	// Peak prediction in the window (Black-Scholes style running max).
	q90, err := ens.PeakQuantile(0.9)
	if err != nil {
		return nil, err
	}
	r.finding("peak_q90", q90, "90%% quantile of window peak: %.4f V", q90)
	r.finding("peak_q90_x10", q90*10, " (%.2f V at the paper's 1:10 display ratio; paper reads ~0.6)\n", q90*10)
	pExceed, se := ens.PeakExceedProb(0.06)
	r.finding("p_peak_gt_60mV", pExceed, "P(peak > 60 mV) = %.2f +/- %.2f\n", pExceed, se)
	return r.done(), nil
}

func runAblIto(cfg Config) (*Result, error) {
	r := newReport(cfg, "Ablation: Ito vs Stratonovich discretization",
		"eq (15) vs eq (16) on the same Wiener paths")
	const tEnd = 1.0
	var tbl [][]string
	for _, n := range []int{64, 256, 1024, 4096} {
		var gap stats.Running
		paths := 200
		if cfg.Quick {
			paths = 50
		}
		for p := 0; p < paths; p++ {
			w := randx.NewWiener(randx.Split(cfg.Seed, p+n), tEnd, n)
			gap.Push(sde.StratonovichWdW(w) - sde.ItoWdW(w))
		}
		tbl = append(tbl, []string{
			itoa(n),
			fmt.Sprintf("%.4g", gap.Mean()),
			fmt.Sprintf("%.4g", gap.Std()),
		})
		r.findings["gap_n"+itoa(n)] = gap.Mean()
	}
	r.table([]string{"grid steps", "mean(Strat - Ito)", "std"}, tbl)
	r.printf("the gap converges to T/2 = %.1f and does NOT vanish with refinement —\n", tEnd/2)
	r.printf("stochastic integration must fix the sum placement (the paper uses Ito).\n")
	return r.done(), nil
}

func runAblEM(cfg Config) (*Result, error) {
	r := newReport(cfg, "Ablation: EM strong order and stepping scheme", "")
	g := sde.GBM{Lambda: 2, Sigma: 1, X0: 1}
	strides := []int{1, 2, 4, 8, 16}
	paths := 400
	if cfg.Quick {
		paths = 100
	}
	errs, err := sde.StrongError(g, 1, 512, paths, strides, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var tbl [][]string
	var lh, le []float64
	for i, st := range strides {
		h := float64(st) / 512
		tbl = append(tbl, []string{fmt.Sprintf("%.4g", h), fmt.Sprintf("%.4g", errs[i])})
		lh = append(lh, math.Log(h))
		le = append(le, math.Log(errs[i]))
	}
	r.table([]string{"step h", "E|X_EM(T)-X(T)|"}, tbl)
	slope, _, err := stats.LinearFit(lh, le)
	if err != nil {
		return nil, err
	}
	r.finding("strong_order", slope, "measured strong order: %.2f (theory: 0.5)\n", slope)

	// Explicit vs drift-implicit on the Fig 10 circuit (zero noise so the
	// comparison is exact).
	ckt := NoisyRCNode(0)
	exp1, err := sde.Transient(ckt, sde.Options{TStop: 1e-9, Steps: 2000, Seed: cfg.Seed, Explicit: true})
	if err != nil {
		return nil, err
	}
	imp, err := sde.Transient(ckt, sde.Options{TStop: 1e-9, Steps: 2000, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	d := abs(exp1.Waves.Get("v(x)").Final() - imp.Waves.Get("v(x)").Final())
	r.finding("explicit_implicit_gap", d, "explicit vs drift-implicit endpoint gap: %.4g V\n", d)
	return r.done(), nil
}
