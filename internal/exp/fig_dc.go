package exp

import (
	"fmt"

	"nanosim/internal/circuit"
	"nanosim/internal/core"
	"nanosim/internal/dcop"
	"nanosim/internal/device"
	"nanosim/internal/flop"
	"nanosim/internal/wave"
)

func init() {
	register(Entry{
		ID:    "fig2",
		Title: "Newton-Raphson dependence on the initial guess",
		Paper: "Fig 2: guess x0 oscillates between x1 and x2; guess x0' converges",
		Run:   runFig2,
	})
	register(Entry{
		ID:    "fig7a",
		Title: "DC I-V of the RTD divider: SWEC vs MLA",
		Paper: "Fig 7(a): SWEC captures the negative resistance region closely",
		Run:   runFig7a,
	})
	register(Entry{
		ID:    "fig7b",
		Title: "DC I-V of the nanowire divider",
		Paper: "Fig 7(b): SWEC simulates circuits involving nanowires",
		Run:   runFig7b,
	})
	register(Entry{
		ID:    "table1",
		Title: "FLOP comparison of DC simulations: SWEC vs MLA",
		Paper: "Table I: SWEC's non-iterative method needs far fewer floating point operations",
		Run:   runTable1,
	})
}

func runFig2(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 2: NR initial-guess sensitivity",
		"scalar Newton on the RTD load line I(v) = (Vs - v)/R")
	rtd := device.NewRTD()
	const vs, res = 0.8, 600.0
	good, err := dcop.ScalarNewton(rtd, vs, res, 0.1, 60)
	if err != nil {
		return nil, err
	}
	r.printf("good guess x0' = 0.100 V: converged=%v in %d iterations to %.4f V\n",
		good.Converged, len(good.V)-1, good.V[len(good.V)-1])
	r.finding("good_converged", b2f(good.Converged), "")

	x1, x2, found := dcop.FindTwoCycle(rtd, vs, res, -0.1, 1.3, 3000)
	if !found {
		return nil, fmt.Errorf("exp: no Newton 2-cycle on the load line")
	}
	bad, err := dcop.ScalarNewton(rtd, vs, res, x1, 12)
	if err != nil {
		return nil, err
	}
	r.printf("bad guess x0 = %.4f V: oscillates between x1=%.4f and x2=%.4f\n", x1, x1, x2)
	r.printf("iterates: ")
	for _, v := range bad.V {
		r.printf("%.4f ", v)
	}
	r.printf("\n")
	r.finding("bad_oscillating", b2f(bad.Oscillating), "oscillation detected: %v\n", bad.Oscillating)
	r.finding("cycle_gap", abs(x2-x1), "cycle spans %.4f V across the NDR region\n", abs(x2-x1))
	return r.done(), nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// dividerIV runs both engines over the divider and returns their device
// I-V curves.
func dividerIV(cfg Config, nanowire bool) (swec, mla *wave.Series, swecStats core.Stats, mlaStats dcop.Stats, err error) {
	n := 301
	if cfg.Quick {
		n = 101
	}
	vMax := 1.5
	// R = 100 keeps the load line clearly steeper than the worst NDR
	// slope (~ -1/175 S), so the divider is single-valued and both
	// engines trace the same continuous curve — comparing curves across
	// a hysteretic snap would only measure which bias each engine jumps
	// at.
	const rDiv = 100.0
	// SWEC sweep.
	cS := RTDDivider(device.DC(0), rDiv)
	if nanowire {
		cS = NanowireDivider(device.DC(0), rDiv)
		vMax = 2.2
	}
	// Three refinement passes trigger the Aitken-accelerated fixed point
	// (see core.Sweep): the accuracy experiments trade a little of
	// SWEC's cost edge for tight convergence through the steep
	// PDR1->NDR traversal. The cost experiment (table1) keeps
	// RefineIters = 0, the paper's non-iterative protocol.
	resS, err := core.Sweep(cS, "V1", 0, vMax, n, "N1", core.DCOptions{RefineIters: 30})
	if err != nil {
		return nil, nil, swecStats, mlaStats, err
	}
	// MLA sweep.
	cM := RTDDivider(device.DC(0), rDiv)
	if nanowire {
		cM = NanowireDivider(device.DC(0), rDiv)
	}
	resM, err := dcop.Sweep(cM, "V1", 0, vMax, n, "N1", dcop.Options{Limit: true})
	if err != nil {
		return nil, nil, swecStats, mlaStats, err
	}
	s := resS.Waves.Get("i(dev)")
	m := resM.Waves.Get("i(dev)")
	s.Name = "SWEC"
	m.Name = "MLA"
	return s, m, resS.Stats, resM.Stats, nil
}

func runFig7a(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 7(a): RTD I-V captured by divider sweep",
		"SWEC vs our MLA implementation; NDR region captured")
	s, m, _, _, err := dividerIV(cfg, false)
	if err != nil {
		return nil, err
	}
	r.plot(s, m)
	va, vb, err := wave.CompareOn(s, m, 200)
	if err != nil {
		return nil, err
	}
	worst := 0.0
	scale := 0.0
	for i := range va {
		if d := abs(va[i] - vb[i]); d > worst {
			worst = d
		}
		if a := abs(va[i]); a > scale {
			scale = a
		}
	}
	r.finding("max_rel_disagreement", worst/scale,
		"SWEC vs MLA max disagreement: %.2f%% of full scale\n", 100*worst/scale)
	// NDR captured: the curve must descend after its peak.
	ndr := hasNDRDip(s)
	r.finding("ndr_captured", b2f(ndr), "NDR region captured: %v\n", ndr)
	return r.done(), nil
}

func hasNDRDip(s *wave.Series) bool {
	runMax := 0.0
	for _, v := range s.V {
		if v > runMax {
			runMax = v
		}
		if runMax > 0 && v < 0.75*runMax {
			return true
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func runFig7b(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 7(b): nanowire I-V captured by divider sweep",
		"staircase conductance of a quantum wire, via SWEC")
	s, m, _, _, err := dividerIV(cfg, true)
	if err != nil {
		return nil, err
	}
	r.plot(s, m)
	va, vb, err := wave.CompareOn(s, m, 150)
	if err != nil {
		return nil, err
	}
	worst, scale := 0.0, 0.0
	for i := range va {
		if d := abs(va[i] - vb[i]); d > worst {
			worst = d
		}
		if a := abs(va[i]); a > scale {
			scale = a
		}
	}
	r.finding("max_rel_disagreement", worst/scale,
		"SWEC vs MLA max disagreement: %.2f%% of full scale\n", 100*worst/scale)
	// Monotone conduction (no NDR) is the quantum-wire signature here;
	// the staircase itself is validated against the model in fig1b.
	r.finding("monotone", b2f(!hasNDRDip(s)), "monotone I-V (no NDR): %v\n", !hasNDRDip(s))
	return r.done(), nil
}

func runTable1(cfg Config) (*Result, error) {
	r := newReport(cfg, "Table I: DC simulation FLOPs, SWEC vs MLA",
		"non-iterative SWEC vs Newton-based MLA on identical DC analyses")
	n := 301
	if cfg.Quick {
		n = 101
	}
	type row struct {
		name   string
		sweep  bool
		nano   bool
		points int
	}
	chainPts := 41
	if cfg.Quick {
		chainPts = 21
	}
	rows := []row{
		{"RTD divider I-V sweep", true, false, n},
		{"Nanowire divider I-V sweep", true, true, n},
		{"RTD chain (8 devices) sweep", false, false, chainPts},
	}
	var tbl [][]string
	for _, rw := range rows {
		var fcS, fcM, fcC flop.Counter
		vMax := 1.5
		if rw.nano {
			vMax = 2.2
		}
		if rw.sweep {
			cS := RTDDivider(device.DC(0), 300)
			cM := RTDDivider(device.DC(0), 300)
			cC := RTDDivider(device.DC(0), 300)
			if rw.nano {
				cS = NanowireDivider(device.DC(0), 300)
				cM = NanowireDivider(device.DC(0), 300)
				cC = NanowireDivider(device.DC(0), 300)
			}
			if _, err := core.Sweep(cS, "V1", 0, vMax, rw.points, "N1", core.DCOptions{FC: &fcS}); err != nil {
				return nil, err
			}
			if _, err := dcop.Sweep(cM, "V1", 0, vMax, rw.points, "N1", dcop.Options{Limit: true, FC: &fcM}); err != nil {
				return nil, err
			}
			if _, err := dcop.Sweep(cC, "V1", 0, vMax, rw.points, "N1", dcop.Options{Limit: true, ColdStart: true, FC: &fcC}); err != nil {
				return nil, err
			}
		}
		if !rw.sweep {
			step := device.DC(0)
			mk := func() *circuit.Circuit { return RTDChain(8, step) }
			if _, err := core.Sweep(mk(), "V1", 0, 1.4, rw.points, "Nn0", core.DCOptions{FC: &fcS}); err != nil {
				return nil, err
			}
			if _, err := dcop.Sweep(mk(), "V1", 0, 1.4, rw.points, "Nn0", dcop.Options{Limit: true, FC: &fcM}); err != nil {
				return nil, err
			}
			if _, err := dcop.Sweep(mk(), "V1", 0, 1.4, rw.points, "Nn0", dcop.Options{Limit: true, ColdStart: true, FC: &fcC}); err != nil {
				return nil, err
			}
		}
		sw, ml, cold := fcS.Total(), fcM.Total(), fcC.Total()
		tbl = append(tbl, []string{
			rw.name,
			fmt.Sprintf("%d", rw.points),
			fmt.Sprintf("%d", sw),
			fmt.Sprintf("%d", ml),
			fmt.Sprintf("%.1fx", float64(ml)/float64(sw)),
			fmt.Sprintf("%d", cold),
			fmt.Sprintf("%.1fx", float64(cold)/float64(sw)),
		})
		key := "ratio_" + keyOf(rw.name)
		r.findings[key] = float64(ml) / float64(sw)
		r.findings[key+"_cold"] = float64(cold) / float64(sw)
	}
	r.table([]string{"DC simulation", "points", "SWEC flops", "MLA warm flops", "warm ratio", "MLA cold flops", "cold ratio"}, tbl)
	r.printf("warm: MLA warm-starts each bias from the previous solution;\n")
	r.printf("cold: each bias solved independently (repeated .op), the Table I protocol.\n")
	r.printf("The paper reports 20-30x for the full simulations; the cold-start\n")
	r.printf("column reproduces that band, the warm column shows the floor.\n")
	return r.done(), nil
}

func keyOf(name string) string {
	switch {
	case name == "RTD divider I-V sweep":
		return "rtd_sweep"
	case name == "Nanowire divider I-V sweep":
		return "nanowire_sweep"
	default:
		return "rtd_chain"
	}
}
