package exp

import (
	"nanosim/internal/core"
	"nanosim/internal/device"
)

func init() {
	register(Entry{
		ID:    "ext-vtc",
		Title: "Extension: FET-RTD inverter voltage transfer curve",
		Paper: "characterizes the Fig 8 cell: logic levels, switching threshold, noise margins",
		Run:   runExtVTC,
	})
}

func runExtVTC(cfg Config) (*Result, error) {
	r := newReport(cfg, "Extension: inverter voltage transfer curve",
		"input swept 0 -> 1.2 V on the Figure 8 cell")
	n := 241
	if cfg.Quick {
		n = 121
	}
	ckt := FETRTDInverter(device.DC(0))
	res, err := core.Sweep(ckt, "VIN", 0, VDDInverter, n, "", core.DCOptions{RefineIters: 30})
	if err != nil {
		return nil, err
	}
	vtc := res.Waves.Get("v(out)")
	vtc.Name = "VTC"
	r.plot(vtc)
	voh := vtc.V[0]
	vol := vtc.Final()
	r.finding("voh", voh, "VOH = %.3f V, VOL = %.3f V, swing %.3f V\n", voh, vol, voh-vol)
	r.finding("vol", vol, "")
	r.finding("swing", voh-vol, "")
	// Switching threshold: input where the output crosses mid-swing.
	mid := 0.5 * (voh + vol)
	vm := -1.0
	for i := 1; i < vtc.Len(); i++ {
		if (vtc.V[i-1]-mid)*(vtc.V[i]-mid) <= 0 {
			vm = vtc.T[i]
			break
		}
	}
	r.finding("vm", vm, "switching threshold VM = %.3f V\n", vm)
	// Maximum small-signal gain along the curve.
	gain := 0.0
	gainAt := 0.0
	for i := 1; i < vtc.Len(); i++ {
		dv := vtc.T[i] - vtc.T[i-1]
		if dv <= 0 {
			continue
		}
		if g := abs(vtc.V[i]-vtc.V[i-1]) / dv; g > gain {
			gain, gainAt = g, vtc.T[i]
		}
	}
	r.finding("gain", gain, "peak |dVout/dVin| = %.1f at Vin = %.3f V", gain, gainAt)
	r.finding("regenerative", b2f(gain > 1), " (regenerative: %v)\n", gain > 1)
	return r.done(), nil
}
