package exp

import (
	"fmt"

	"nanosim/internal/core"
	"nanosim/internal/device"
	"nanosim/internal/flop"
	"nanosim/internal/tran"
	"nanosim/internal/wave"
)

func init() {
	register(Entry{
		ID:    "fig8",
		Title: "FET-RTD inverter transient: SWEC vs SPICE3-style NR vs ACES-style PWL",
		Paper: "Fig 8: SWEC generates the accurate response; SPICE3 fails to converge to the correct solution; ACESn agrees",
		Run:   runFig8,
	})
	register(Entry{
		ID:    "fig9",
		Title: "RTD D-flip-flop: latch on the rising clock edge",
		Paper: "Fig 9: input switches at t = 300 ns, output switches at the rising clock edge at t = 350 ns",
		Run:   runFig9,
	})
	register(Entry{
		ID:    "speedup",
		Title: "SWEC vs SPICE-like transient cost across circuit sizes",
		Paper: "§1/§6: 20-30x speedup over SPICE-like simulators",
		Run:   runSpeedup,
	})
	register(Entry{
		ID:    "abl-predictor",
		Title: "Ablation: eq (5) Taylor predictor on vs off",
		Paper: "design choice from §3.3",
		Run:   runAblPredictor,
	})
	register(Entry{
		ID:    "abl-timestep",
		Title: "Ablation: adaptive time step (eqs 10-12) vs fixed step",
		Paper: "design choice from §3.4",
		Run:   runAblTimestep,
	})
}

func runFig8(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 8: FET-RTD inverter transient",
		"input pulses 0 <-> 1.2 V; output at the RTD junction")
	const tStop = 500e-9
	// (b) SWEC.
	sw, err := core.Transient(FETRTDInverter(InverterInput()), core.Options{TStop: tStop, Eps: 0.01})
	if err != nil {
		return nil, err
	}
	// (c) SPICE3-style NR at the coarse fixed grid a deterministic
	// simulator would pick for a 500 ns window (no step-cutting rescue:
	// HMin = HInit pins the grid, as SPICE3's "trtol" grid would).
	nr, err := tran.NR(FETRTDInverter(InverterInput()), tran.Options{
		TStop: tStop, HInit: 5e-9, HMax: 5e-9, HMin: 5e-9, MaxNRIter: 15})
	if err != nil {
		return nil, err
	}
	// NR with adaptive step cutting (a modern, robustified Newton) for
	// the work comparison.
	nrAdaptive, err := tran.NR(FETRTDInverter(InverterInput()), tran.Options{TStop: tStop})
	if err != nil {
		return nil, err
	}
	// (d) ACES-style PWL.
	pw, err := tran.PWL(FETRTDInverter(InverterInput()), tran.Options{TStop: tStop, Segments: 96})
	if err != nil {
		return nil, err
	}
	outS := sw.Waves.Get("v(out)")
	outN := nr.Waves.Get("v(out)")
	outP := pw.Waves.Get("v(out)")
	outS.Name = "SWEC"
	outN.Name = "SPICE3-NR"
	outP.Name = "ACES-PWL"
	vin := sw.Waves.Get("v(in)")
	vin.Name = "input"
	r.plot(vin, outS)
	r.plot(outS, outN, outP)

	// SWEC correctness: static levels reached.
	hi0 := outS.At(80e-9)
	lo := outS.At(250e-9)
	hi1 := outS.At(450e-9)
	r.finding("swec_high", hi0, "SWEC output: high=%.3f V, low=%.3f V, recovered high=%.3f V\n", hi0, lo, hi1)
	r.finding("swec_low", lo, "")
	r.finding("swec_high2", hi1, "")
	// SWEC vs PWL agreement at the settled points.
	dP := abs(outS.At(250e-9)-outP.At(250e-9)) + abs(outS.At(450e-9)-outP.At(450e-9))
	r.finding("swec_pwl_gap", dP, "SWEC vs ACES-PWL settled disagreement: %.3f V\n", dP)
	// NR distress counters (the Fig 8c story): on the pinned grid the
	// Newton iteration hits its limit at every NDR switching event and
	// the point is accepted *unconverged* — the false-convergence
	// signature the paper attributes to SPICE3.
	r.finding("nr_nonconverged", float64(nr.Stats.NonConverged),
		"SPICE3-NR (pinned 5 ns grid): %d unconverged points of %d, %.1f NR iters/step\n",
		nr.Stats.NonConverged, nr.Stats.Steps, float64(nr.Stats.NRIters)/float64(max(1, nr.Stats.Steps)))
	r.finding("nr_iters_per_step", float64(nr.Stats.NRIters)/float64(max(1, nr.Stats.Steps)), "")
	r.printf("robustified adaptive NR: %d rejected, %d unconverged, %.1f iters/step\n",
		nrAdaptive.Stats.Rejected, nrAdaptive.Stats.NonConverged,
		float64(nrAdaptive.Stats.NRIters)/float64(max(1, nrAdaptive.Stats.Steps)))
	// Work comparison.
	r.printf("work: SWEC %d solves / %d steps; NR %d solves / %d steps; PWL %d solves / %d steps\n",
		sw.Stats.Solves, sw.Stats.Steps, nrAdaptive.Stats.Solves, nrAdaptive.Stats.Steps, pw.Stats.Solves, pw.Stats.Steps)
	return r.done(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func runFig9(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 9: RTD D-flip-flop (MOBILE)",
		"clock 100 ns period; data switches at 300 ns; output switches at the 350 ns rising edge")
	const tStop = 500e-9
	res, err := core.Transient(RTDDFF(DFFClock(), DFFData()), core.Options{TStop: tStop, Eps: 0.01})
	if err != nil {
		return nil, err
	}
	q := res.Waves.Get("v(q)")
	ck := res.Waves.Get("v(ck)")
	d := res.Waves.Get("v(d)")
	q.Name = "Q"
	ck.Name = "CLK"
	d.Name = "D"
	r.plot(ck, d)
	r.plot(q)
	// The MOBILE output is evaluated mid high-phase of each clock cycle.
	// Native polarity: Q = NOT D sampled at the rising edge.
	phases := []struct {
		t    float64
		data float64
	}{
		{75e-9, 1}, {175e-9, 1}, {275e-9, 1}, {375e-9, 0}, {475e-9, 0},
	}
	correct := 0
	for _, ph := range phases {
		v := q.At(ph.t)
		wantHigh := ph.data == 0 // inverting latch
		if (wantHigh && v > 0.8) || (!wantHigh && v < 0.4) {
			correct++
		}
		r.printf("t=%3.0f ns: D=%.0f  Q=%.3f V (want %s)\n", ph.t*1e9, ph.data,
			v, map[bool]string{true: "high", false: "low"}[wantHigh])
	}
	r.finding("phases_correct", float64(correct), "correct phases: %d/%d\n", correct, len(phases))
	// The output transition must happen at the 350 ns rising edge, not at
	// the 300 ns data switch.
	preEdge := q.At(320e-9) // clock low: return-to-zero
	r.finding("rtz_level", preEdge, "return-to-zero level between edges: %.3f V\n", preEdge)
	cross := q.Crossings(0.5, +1)
	latchT := -1.0
	for _, t := range cross {
		if t > 300e-9 {
			latchT = t
			break
		}
	}
	r.finding("latch_time_ns", latchT*1e9,
		"first Q rise after the data switch: t = %.1f ns (paper: 350 ns)\n", latchT*1e9)
	r.printf("steps=%d rejected=%d\n", res.Stats.Steps, res.Stats.Rejected)
	return r.done(), nil
}

func runSpeedup(cfg Config) (*Result, error) {
	r := newReport(cfg, "Headline: SWEC vs SPICE-like cost",
		"three protocols: matched fixed grid, engine-preferred adaptive, and the Table I cold-start DC band")
	sizes := []int{2, 5, 10, 20}
	if cfg.Quick {
		sizes = []int{2, 5}
	}
	step := device.Pulse{V1: 0.3, V2: 1.1, Delay: 20e-9, Rise: 2e-9, Fall: 2e-9, Width: 100e-9}
	const tStop = 200e-9
	const h = 0.2e-9
	var tbl [][]string
	worstRatio, bestRatio := 1e18, 0.0
	for _, n := range sizes {
		// Protocol A: identical fixed grid — isolates the per-point cost
		// of the linearization (SWEC: 1 solve; NR: >= MinNRIter solves).
		var fcS, fcN flop.Counter
		if _, err := core.Transient(RTDChain(n, step), core.Options{
			TStop: tStop, FixedStep: true, HInit: h, FC: &fcS}); err != nil {
			return nil, err
		}
		nrM, err := tran.NR(RTDChain(n, step), tran.Options{
			TStop: tStop, HInit: h, HMax: h, HMin: h, FC: &fcN})
		if err != nil {
			return nil, err
		}
		matched := float64(fcN.Total()) / float64(fcS.Total())
		// Protocol B: each engine with its preferred adaptive control.
		var fcSA, fcNA flop.Counter
		swA, err := core.Transient(RTDChain(n, step), core.Options{TStop: tStop, FC: &fcSA})
		if err != nil {
			return nil, err
		}
		nrA, err := tran.NR(RTDChain(n, step), tran.Options{TStop: tStop, FC: &fcNA})
		if err != nil {
			return nil, err
		}
		perS := float64(fcSA.Total()) / float64(swA.Stats.Steps)
		perN := float64(fcNA.Total()) / float64(nrA.Stats.Steps)
		adaptive := perN / perS
		if matched < worstRatio {
			worstRatio = matched
		}
		if matched > bestRatio {
			bestRatio = matched
		}
		tbl = append(tbl, []string{
			fmt.Sprintf("%d RTD stages", n),
			fmt.Sprintf("%d", fcS.Total()),
			fmt.Sprintf("%d", fcN.Total()),
			fmt.Sprintf("%.1fx", matched),
			fmt.Sprintf("%.1fx", adaptive),
			fmt.Sprintf("%d", nrM.Stats.NonConverged),
		})
		r.findings[fmt.Sprintf("matched_n%d", n)] = matched
		r.findings[fmt.Sprintf("adaptive_n%d", n)] = adaptive
	}
	r.table([]string{"circuit", "SWEC flops (fixed grid)", "NR flops (same grid)", "matched ratio", "adaptive flops/point ratio", "NR unconverged"}, tbl)
	r.finding("ratio_min", worstRatio, "matched-grid advantage: %.1fx - %.1fx.\n", worstRatio, bestRatio)
	r.finding("ratio_max", bestRatio, "")
	r.printf("The paper's 20-30x band compares against a simulator with *no* usable\n")
	r.printf("initial guess per solve; that protocol is reproduced by the cold-start\n")
	r.printf("column of the table1 experiment (20-40x there). Warm-started Newton on\n")
	r.printf("a fine shared grid narrows the gap to the matched ratio above, which is\n")
	r.printf("the honest lower bound of SWEC's advantage.\n")
	return r.done(), nil
}

func runAblPredictor(cfg Config) (*Result, error) {
	r := newReport(cfg, "Ablation: Taylor predictor (eq 5)", "")
	ramp, _ := device.NewPWL([]float64{0, 1e-5}, []float64{0, 1.2})
	run := func(noPred bool) (*core.Result, error) {
		return core.Transient(RTDDivider(ramp, 300), core.Options{TStop: 1e-5, NoPredictor: noPred})
	}
	with, err := run(false)
	if err != nil {
		return nil, err
	}
	without, err := run(true)
	if err != nil {
		return nil, err
	}
	a := with.Waves.Get("v(d)")
	b := without.Waves.Get("v(d)")
	// Compare at settled sample times away from the NDR snap, where the
	// two step sequences have re-synchronized (pointwise comparison at
	// the snap cliff only measures step placement, not accuracy).
	worst := 0.0
	for _, ts := range []float64{2e-6, 4e-6, 6e-6, 8e-6, 9.9e-6} {
		if d := abs(a.At(ts) - b.At(ts)); d > worst {
			worst = d
		}
	}
	r.finding("waveform_gap", worst, "max settled-sample difference: %.4f V\n", worst)
	r.finding("steps_with", float64(with.Stats.Steps), "steps with predictor: %d (rejected %d)\n", with.Stats.Steps, with.Stats.Rejected)
	r.finding("steps_without", float64(without.Stats.Steps), "steps without:        %d (rejected %d)\n", without.Stats.Steps, without.Stats.Rejected)
	r.printf("device evals: %d with vs %d without (predictor costs one DGeq per device per step)\n",
		with.Stats.DeviceEvals, without.Stats.DeviceEvals)
	return r.done(), nil
}

func runAblTimestep(cfg Config) (*Result, error) {
	r := newReport(cfg, "Ablation: adaptive vs fixed time step (eqs 10-12)",
		"equal step budgets; accuracy judged against a tight reference")
	p := device.Pulse{V1: 0, V2: 1.2, Delay: 50e-9, Rise: 1e-9, Fall: 1e-9, Width: 150e-9}
	const tStop = 400e-9
	// Tight reference.
	ref, err := core.Transient(FETRTDInverter(p), core.Options{TStop: tStop, Eps: 0.001})
	if err != nil {
		return nil, err
	}
	// Candidate adaptive run at a loose tolerance.
	adaptive, err := core.Transient(FETRTDInverter(p), core.Options{TStop: tStop, Eps: 0.02})
	if err != nil {
		return nil, err
	}
	// Fixed-step run with the *same step budget* the adaptive run used.
	hFixed := tStop / float64(adaptive.Stats.Steps)
	fixed, err := core.Transient(FETRTDInverter(p), core.Options{TStop: tStop, FixedStep: true, HInit: hFixed})
	if err != nil {
		return nil, err
	}
	rOut := ref.Waves.Get("v(out)")
	aOut := adaptive.Waves.Get("v(out)")
	fOut := fixed.Waves.Get("v(out)")
	// Metric 1: settled levels.
	settledErr := func(s *wave.Series) float64 {
		worst := 0.0
		for _, ts := range []float64{40e-9, 240e-9, 390e-9} {
			if d := abs(s.At(ts) - rOut.At(ts)); d > worst {
				worst = d
			}
		}
		return worst
	}
	// Metric 2: timing of the falling output transition after the input
	// rise at 100 ns (mid-swing crossing).
	crossAfter := func(s *wave.Series, t0 float64) float64 {
		for _, t := range s.Crossings(0.6, -1) {
			if t > t0 {
				return t
			}
		}
		return -1
	}
	refT := crossAfter(rOut, 100e-9)
	adaT := crossAfter(aOut, 100e-9)
	fixT := crossAfter(fOut, 100e-9)
	r.finding("steps", float64(adaptive.Stats.Steps), "step budget: %d steps each\n", adaptive.Stats.Steps)
	r.finding("settled_adaptive", settledErr(aOut), "settled error: adaptive %.4f V, fixed %.4f V\n",
		settledErr(aOut), settledErr(fOut))
	r.finding("settled_fixed", settledErr(fOut), "")
	r.finding("timing_adaptive_ns", abs(adaT-refT)*1e9, "transition-timing error: adaptive %.2f ns, fixed %.2f ns\n",
		abs(adaT-refT)*1e9, abs(fixT-refT)*1e9)
	r.finding("timing_fixed_ns", abs(fixT-refT)*1e9, "")
	return r.done(), nil
}
