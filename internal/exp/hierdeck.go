package exp

import (
	"fmt"
	"strings"
)

// HierPipelineDeck generates the n-stage hierarchical RTD pipeline used
// by the hierarchical-compile acceptance test (internal/hier) and the
// nanobench hier_compile case: every stage is one `X` instance of a
// single .subckt master, so a deck of n stages carries n congruent
// torn blocks that the hierarchical compiler should compile once and
// clone n times.
//
// Each stage is a rows x cols mesh of RTD cells off a local supply
// rail, strongly coupled inside the stage, stages coupled through a
// weak 250k resistor — so each instance partitions into one torn block
// whose factorization has real 2-D fill. The rail reaches the global
// vdd through one series resistor per stage: vdd is pinned stiff by
// VDD, so that single edge is the stage's only supply tear (feeding
// every cell from vdd directly would instead tear once per cell —
// rows*cols*n stiff tears of pure bookkeeping), and the local rail row
// couples to all cells, which is what gives the in-block factorization
// its fill.
func HierPipelineDeck(n, rows, cols int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hier pipeline %d\n", n)
	b.WriteString("VDD vdd 0 0.55\n")
	b.WriteString("VIN drv 0 PULSE(0.1 0.9 0.5n 0.5n 0.5n 3n 8n)\n")
	prev := "drv"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("s%d", i)
		fmt.Fprintf(&b, "X%d vdd %s %s stage\n", i, prev, out)
		prev = out
	}
	fmt.Fprintf(&b, "RL %s 0 1meg\n", prev)
	b.WriteString(".subckt stage vdd in out\n")
	b.WriteString("RS vdd rail 50\n")
	b.WriteString("RC in n0x0 250k\n")
	node := func(r, c int) string {
		if r == rows-1 && c == cols-1 {
			return "out"
		}
		return fmt.Sprintf("n%dx%d", r, c)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			nd := node(r, c)
			fmt.Fprintf(&b, "R%dx%d rail %s %d\n", r, c, nd, 300+10*((r+c)%4))
			fmt.Fprintf(&b, "N%dx%d %s 0 rtd\n", r, c, nd)
			fmt.Fprintf(&b, "C%dx%d %s 0 10f\n", r, c, nd)
			if c > 0 {
				fmt.Fprintf(&b, "RH%dx%d %s %s 300\n", r, c, node(r, c-1), nd)
			}
			if r > 0 {
				fmt.Fprintf(&b, "RV%dx%d %s %s 300\n", r, c, node(r-1, c), nd)
			}
		}
	}
	b.WriteString(".ends\n.model rtd RTD\n.end\n")
	return b.String()
}
