// Package exp regenerates every table and figure of the paper's
// evaluation (plus the ablations DESIGN.md calls out) as runnable
// experiments. Each experiment produces a text report — measured series
// rendered as ASCII charts and tables — and a set of machine-checkable
// findings that the integration tests and EXPERIMENTS.md assert against
// the paper's claims.
package exp
