package exp

import (
	"strings"
	"testing"
)

// quick runs an experiment in Quick mode and returns its findings.
func quick(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, Config{Quick: true})
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if res.Text == "" {
		t.Fatalf("experiment %s produced no report", id)
	}
	return res
}

func TestRegistry(t *testing.T) {
	want := []string{"fig1a", "fig1b", "fig2", "fig3", "fig4", "fig5",
		"fig7a", "fig7b", "table1", "fig8", "fig9", "fig10",
		"speedup", "abl-predictor", "abl-timestep", "abl-ito", "abl-em",
		"set-diamond"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(All()), len(want))
	}
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1a(t *testing.T) {
	res := quick(t, "fig1a")
	if res.Findings["peaks"] < 2 {
		t.Errorf("RTT peaks = %g, want >= 2 (multi-peak staircase)", res.Findings["peaks"])
	}
	if rise := res.Findings["staircase_rise"]; rise < 1.2 {
		t.Errorf("staircase rise = %g, want > 1.2 (rising envelope)", rise)
	}
}

func TestFig1b(t *testing.T) {
	res := quick(t, "fig1b")
	if res.Findings["tread_rel_err"] > 0.1 {
		t.Errorf("conductance treads deviate %g from k*G0", res.Findings["tread_rel_err"])
	}
	if res.Findings["steps"] < 3 {
		t.Error("too few conductance steps for a staircase")
	}
}

func TestFig2(t *testing.T) {
	res := quick(t, "fig2")
	if res.Findings["good_converged"] != 1 {
		t.Error("good initial guess must converge")
	}
	if res.Findings["bad_oscillating"] != 1 {
		t.Error("bad initial guess must oscillate (the Figure 2 phenomenon)")
	}
	if res.Findings["cycle_gap"] < 0.05 {
		t.Error("oscillation cycle should span a visible voltage range")
	}
}

func TestFig3(t *testing.T) {
	res := quick(t, "fig3")
	if res.Findings["pwl_min"] >= 0 {
		t.Error("PWL slope must go negative across NDR (Fig 3a)")
	}
	if res.Findings["geq_min"] <= 0 {
		t.Error("SWEC Geq must stay positive (Fig 3b)")
	}
}

func TestFig4(t *testing.T) {
	res := quick(t, "fig4")
	if !(res.Findings["peak_v"] > 0 && res.Findings["peak_v"] < res.Findings["valley_v"]) {
		t.Errorf("region boundaries out of order: %v", res.Findings)
	}
	if res.Findings["pvr"] < 1.5 {
		t.Errorf("PVR = %g too small", res.Findings["pvr"])
	}
}

func TestFig5(t *testing.T) {
	res := quick(t, "fig5")
	// Both parameter sets: differential conductance dips negative, SWEC
	// conductance stays positive (the paper's Fig 5 contrast).
	for _, tag := range []string{"date05", "default"} {
		if res.Findings["gdiff_min_"+tag] >= 0 {
			t.Errorf("%s: differential conductance never went negative", tag)
		}
		if res.Findings["geq_min_"+tag] <= 0 {
			t.Errorf("%s: SWEC conductance went non-positive", tag)
		}
	}
}

func TestFig7a(t *testing.T) {
	res := quick(t, "fig7a")
	if res.Findings["ndr_captured"] != 1 {
		t.Error("sweep failed to capture the NDR region (Fig 7a)")
	}
	if res.Findings["max_rel_disagreement"] > 0.08 {
		t.Errorf("SWEC and MLA disagree by %.1f%% of full scale",
			100*res.Findings["max_rel_disagreement"])
	}
}

func TestFig7b(t *testing.T) {
	res := quick(t, "fig7b")
	if res.Findings["monotone"] != 1 {
		t.Error("nanowire I-V should be monotone")
	}
	if res.Findings["max_rel_disagreement"] > 0.08 {
		t.Errorf("SWEC and MLA disagree by %.1f%%", 100*res.Findings["max_rel_disagreement"])
	}
}

func TestTable1(t *testing.T) {
	res := quick(t, "table1")
	// Warm ratios: SWEC strictly cheaper.
	for _, k := range []string{"ratio_rtd_sweep", "ratio_nanowire_sweep", "ratio_rtd_chain"} {
		if res.Findings[k] < 1.5 {
			t.Errorf("%s = %.2f, SWEC should be clearly cheaper", k, res.Findings[k])
		}
	}
	// Cold-start protocol reproduces the paper's order of magnitude.
	if res.Findings["ratio_rtd_sweep_cold"] < 6 {
		t.Errorf("cold RTD sweep ratio = %.1f, want the Table I band", res.Findings["ratio_rtd_sweep_cold"])
	}
	if res.Findings["ratio_rtd_chain_cold"] < 6 {
		t.Errorf("cold RTD chain ratio = %.1f, want the Table I band", res.Findings["ratio_rtd_chain_cold"])
	}
	if !strings.Contains(res.Text, "SWEC flops") {
		t.Error("table missing from report")
	}
}

func TestFig8(t *testing.T) {
	res := quick(t, "fig8")
	// SWEC levels: high ~1.07, low ~0.18 (from the static tuning).
	if h := res.Findings["swec_high"]; h < 0.95 || h > 1.15 {
		t.Errorf("SWEC high = %g, want ~1.07", h)
	}
	if l := res.Findings["swec_low"]; l < 0.1 || l > 0.3 {
		t.Errorf("SWEC low = %g, want ~0.18", l)
	}
	if h2 := res.Findings["swec_high2"]; h2 < 0.95 {
		t.Errorf("SWEC failed to recover high: %g", h2)
	}
	// ACES agrees with SWEC at settled points (Fig 8b vs 8d).
	if res.Findings["swec_pwl_gap"] > 0.15 {
		t.Errorf("SWEC vs PWL gap %g too large", res.Findings["swec_pwl_gap"])
	}
	// NR shows distress (Fig 8c): unconverged (falsely accepted) points
	// at the NDR switching events on the pinned grid.
	if res.Findings["nr_nonconverged"] == 0 {
		t.Error("NR showed no unconverged points on the pinned grid — Fig 8c story lost")
	}
}

func TestFig9(t *testing.T) {
	res := quick(t, "fig9")
	if res.Findings["phases_correct"] < 5 {
		t.Errorf("flip-flop phases correct = %g/5", res.Findings["phases_correct"])
	}
	// Output switches at the rising edge after the data change: within
	// (345, 365) ns, not at the 300 ns data switch.
	lt := res.Findings["latch_time_ns"]
	if lt < 345 || lt > 365 {
		t.Errorf("latch time = %g ns, want ~350 (rising clock edge)", lt)
	}
	if res.Findings["rtz_level"] > 0.2 {
		t.Errorf("return-to-zero level = %g, want near 0", res.Findings["rtz_level"])
	}
}

func TestFig10(t *testing.T) {
	res := quick(t, "fig10")
	if res.Findings["mean_err"] > 0.008 {
		t.Errorf("ensemble mean error %g V too large", res.Findings["mean_err"])
	}
	if res.Findings["std_rel_err"] > 0.25 {
		t.Errorf("ensemble std error %.0f%% too large", 100*res.Findings["std_rel_err"])
	}
	// Peak near 0.6 at the paper's 1:10 ratio.
	if p := res.Findings["peak_q90_x10"]; p < 0.4 || p > 0.8 {
		t.Errorf("peak (x10) = %g, want ~0.6", p)
	}
}

func TestSpeedup(t *testing.T) {
	res := quick(t, "speedup")
	// Matched-grid: SWEC strictly cheaper. The two-device chain is the
	// floor (shared stamping overhead dominates); the advantage grows
	// with device count.
	if res.Findings["ratio_min"] < 1.25 {
		t.Errorf("minimum matched-grid advantage %.2fx — SWEC must win clearly", res.Findings["ratio_min"])
	}
	if res.Findings["ratio_max"] < res.Findings["ratio_min"] {
		t.Error("ratio bookkeeping inconsistent")
	}
}

func TestSETDiamond(t *testing.T) {
	res := quick(t, "set-diamond")
	// Acceptance criteria of the single-electron engine: gate
	// periodicity within 2% of e/Cg, blockade at least 100x suppressed,
	// and the stochastic engine consistent with the exact solver.
	if e := res.Findings["gate_period_rel_err"]; e > 0.02 {
		t.Errorf("gate period off e/Cg by %.2f%%, want <= 2%%", 100*e)
	}
	if s := res.Findings["blockade_suppression"]; s < 100 {
		t.Errorf("blockade suppression %gx, want >= 100x", s)
	}
	if g := res.Findings["kmc_me_rel_gap"]; g > 0.15 {
		t.Errorf("kMC vs master equation gap %.1f%%, want <= 15%%", 100*g)
	}
}

func TestAblations(t *testing.T) {
	pred := quick(t, "abl-predictor")
	if pred.Findings["waveform_gap"] > 0.05 {
		t.Errorf("predictor changes waveform by %g V", pred.Findings["waveform_gap"])
	}
	ts := quick(t, "abl-timestep")
	// At an equal step budget the adaptive run must not be less accurate.
	if ts.Findings["settled_adaptive"] > ts.Findings["settled_fixed"]+0.02 {
		t.Errorf("adaptive settled error %g worse than fixed %g",
			ts.Findings["settled_adaptive"], ts.Findings["settled_fixed"])
	}
	if ts.Findings["timing_adaptive_ns"] > ts.Findings["timing_fixed_ns"]+1 {
		t.Errorf("adaptive timing error %g ns worse than fixed %g ns",
			ts.Findings["timing_adaptive_ns"], ts.Findings["timing_fixed_ns"])
	}
	ito := quick(t, "abl-ito")
	// Gap ~ T/2 = 0.5 at every resolution.
	for _, k := range []string{"gap_n64", "gap_n4096"} {
		if g := ito.Findings[k]; g < 0.4 || g > 0.6 {
			t.Errorf("%s = %g, want ~0.5", k, g)
		}
	}
	em := quick(t, "abl-em")
	if o := em.Findings["strong_order"]; o < 0.3 || o > 0.7 {
		t.Errorf("strong order = %g, want ~0.5", o)
	}
	if em.Findings["explicit_implicit_gap"] > 0.01 {
		t.Errorf("explicit vs implicit gap %g", em.Findings["explicit_implicit_gap"])
	}
}
