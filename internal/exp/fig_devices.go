package exp

import (
	"math"

	"nanosim/internal/device"
	"nanosim/internal/wave"
)

func init() {
	register(Entry{
		ID:    "fig1a",
		Title: "RTT multi-peak I-V characteristics",
		Paper: "Fig 1(a): collector current vs collector-emitter voltage shows multiple peaks with a staircase contour",
		Run:   runFig1a,
	})
	register(Entry{
		ID:    "fig1b",
		Title: "Carbon nanotube conductance staircase",
		Paper: "Fig 1(b): CNT conductance climbs in quantized steps — quantum-wire behaviour",
		Run:   runFig1b,
	})
	register(Entry{
		ID:    "fig3",
		Title: "PWL vs step-wise equivalent conductance",
		Paper: "Fig 3: piecewise-linear slope goes negative across NDR, Geq = I/V stays positive",
		Run:   runFig3,
	})
	register(Entry{
		ID:    "fig4",
		Title: "RTD I-V characteristics with PDR1/NDR/PDR2 regions",
		Paper: "Fig 4: Schulman RTD I-V divides into PDR1, NDR, PDR2",
		Run:   runFig4,
	})
	register(Entry{
		ID:    "fig5",
		Title: "RTD conductance vs bias: differential vs step-wise equivalent",
		Paper: "Fig 5: differential conductance goes negative entering the resistance-decreasing region; SWEC conductance stays positive",
		Run:   runFig5,
	})
}

func sweepIV(m device.IV, v0, v1 float64, n int) (*wave.Series, *wave.Series) {
	iv := wave.NewSeries("I(V)", n+1)
	gv := wave.NewSeries("dI/dV", n+1)
	for k := 0; k <= n; k++ {
		v := v0 + (v1-v0)*float64(k)/float64(n)
		iv.MustAppend(v, m.I(v))
		gv.MustAppend(v, m.G(v))
	}
	return iv, gv
}

func runFig1a(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 1(a): RTT I-V", "multi-peak staircase collector characteristic")
	rtt := device.NewRTT()
	iv, gv := sweepIV(rtt, 0, 2.2, 440)
	r.plot(iv)
	// Count resonance peaks via conductance sign changes + -> -.
	peaks := 0
	prev := gv.V[1]
	for _, g := range gv.V[2:] {
		if prev > 0 && g <= 0 {
			peaks++
		}
		prev = g
	}
	r.finding("peaks", float64(peaks), "resonance peaks counted: %d (model has %d)\n", peaks, rtt.NumPeaks())
	// Envelope rises: last peak current above first peak current.
	var peakIs []float64
	runningMax := 0.0
	descending := false
	for i, g := range gv.V {
		if g > 0 {
			if descending {
				runningMax = 0
			}
			descending = false
			if iv.V[i] > runningMax {
				runningMax = iv.V[i]
			}
		} else if !descending {
			descending = true
			peakIs = append(peakIs, runningMax)
		}
	}
	if len(peakIs) >= 2 {
		rise := peakIs[len(peakIs)-1] / peakIs[0]
		r.finding("staircase_rise", rise, "peak-current staircase rise (last/first): %.2fx\n", rise)
	}
	return r.done(), nil
}

func runFig1b(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 1(b): CNT conductance staircase", "quantized conductance steps of ~G0")
	nw := device.NewNanowire()
	iv, gv := sweepIV(nw, -2, 2, 400)
	gv.Name = "G (S)"
	r.plot(gv)
	r.plot(iv)
	// Tread values at mid-step biases should be ~ k*G0.
	g0 := nw.GQuantum
	worst := 0.0
	for k := 1; k <= nw.Steps; k++ {
		v := nw.StepV * float64(k)
		got := nw.G(v) / (float64(k) * g0)
		if d := math.Abs(got - 1); d > worst {
			worst = d
		}
	}
	r.finding("tread_rel_err", worst, "worst tread deviation from k*G0: %.3f\n", worst)
	r.finding("steps", float64(nw.Steps), "conductance steps: %d of %.4g S\n", nw.Steps, g0)
	return r.done(), nil
}

func runFig3(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 3: PWL slope vs SWEC equivalent conductance",
		"the two linearizations of the same staircase I-V")
	rtd := device.NewRTD()
	tab, err := device.SampleIV(rtd, 0, 1.2, 24)
	if err != nil {
		return nil, err
	}
	n := 480
	pwl := wave.NewSeries("PWL dI/dV", n)
	geq := wave.NewSeries("SWEC Geq", n)
	for k := 1; k <= n; k++ {
		v := 1.2 * float64(k) / float64(n)
		pwl.MustAppend(v, tab.G(v))
		geq.MustAppend(v, device.Geq(rtd, v))
	}
	r.plot(pwl, geq)
	_, pwlMin, _, _ := pwl.MinMax()
	_, geqMin, _, _ := geq.MinMax()
	r.finding("pwl_min", pwlMin, "PWL slope minimum: %.4g S (negative across NDR)\n", pwlMin)
	r.finding("geq_min", geqMin, "SWEC Geq minimum:  %.4g S (always positive)\n", geqMin)
	return r.done(), nil
}

func runFig4(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 4: RTD I-V regions", "PDR1 / NDR / PDR2 of the Schulman model")
	rtd := device.NewRTD()
	iv, _ := sweepIV(rtd, 0, 1.2, 480)
	r.plot(iv)
	vp, ip, vv, iv2, ok := rtd.PeakValley(1.2)
	if !ok {
		r.printf("!! no NDR found\n")
		return r.done(), nil
	}
	r.finding("peak_v", vp, "peak:   V=%.3f V, I=%.4g A\n", vp, ip)
	r.finding("peak_i", ip, "")
	r.finding("valley_v", vv, "valley: V=%.3f V, I=%.4g A\n", vv, iv2)
	r.finding("valley_i", iv2, "")
	r.finding("pvr", ip/iv2, "peak-to-valley ratio: %.2f\n", ip/iv2)
	r.printf("regions: PDR1 = [0, %.3f), NDR = [%.3f, %.3f), PDR2 = [%.3f, ...)\n", vp, vp, vv, vv)
	// Cross-check the classifier.
	if device.RegionOf(rtd, vp/2, 1.2) != device.PDR1 ||
		device.RegionOf(rtd, (vp+vv)/2, 1.2) != device.NDR ||
		device.RegionOf(rtd, vv+0.2, 1.2) != device.PDR2 {
		r.printf("!! region classifier disagrees with sweep\n")
	}
	return r.done(), nil
}

func runFig5(cfg Config) (*Result, error) {
	r := newReport(cfg, "Figure 5: RTD conductance as a function of applied bias",
		"differential conductance goes negative in the RDR; SWEC equivalent conductance stays positive")
	// The paper draws this with the ref [1] parameter set; both sets are
	// reported, the Date05 one carries the finding keys.
	for _, m := range []struct {
		name string
		rtd  *device.RTD
		vMax float64
		tag  string
	}{
		{"paper §5.2 constants (Date05)", device.NewRTDDate05(), 5, "date05"},
		{"nanosim default (sub-volt)", device.NewRTD(), 1.2, "default"},
	} {
		n := 480
		gd := wave.NewSeries("dI/dV", n)
		ge := wave.NewSeries("Geq=I/V", n)
		for k := 1; k <= n; k++ {
			v := m.vMax * float64(k) / float64(n)
			gd.MustAppend(v, m.rtd.G(v))
			ge.MustAppend(v, device.Geq(m.rtd, v))
		}
		r.printf("-- %s --\n", m.name)
		r.plot(gd, ge)
		_, gdMin, _, _ := gd.MinMax()
		_, geMin, _, _ := ge.MinMax()
		r.finding("gdiff_min_"+m.tag, gdMin, "differential conductance minimum: %.4g S\n", gdMin)
		r.finding("geq_min_"+m.tag, geMin, "SWEC conductance minimum:         %.4g S\n\n", geMin)
	}
	return r.done(), nil
}
