package exp

import (
	"nanosim/internal/circuit"
	"nanosim/internal/device"
	"nanosim/internal/linsolve"
	"nanosim/internal/stamp"
)

// Canonical experiment circuits. Constants here were tuned once against
// the default RTD (peak 0.241 V / 1.23 mA, valley 0.515 V / 0.41 mA) and
// are frozen so every experiment, example and benchmark exercises the
// same hardware; DESIGN.md records the tuning rationale.

// VDDInverter is the FET-RTD inverter supply (Fig 8).
const VDDInverter = 1.2

// RTDDivider is the Figure 7(a) circuit: V1 -- R -- (RTD) -- gnd, with a
// parasitic capacitance at the device node.
func RTDDivider(w device.Waveform, rOhms float64) *circuit.Circuit {
	c := circuit.New("rtd-divider (Fig 7a)")
	c.AddVSource("V1", "in", "0", w)
	c.AddResistor("R1", "in", "d", rOhms)
	c.AddDevice("N1", "d", "0", device.NewRTD())
	c.AddCapacitor("CD", "d", "0", 10e-15)
	return c
}

// NanowireDivider is the Figure 7(b) circuit with a CNT/nanowire.
func NanowireDivider(w device.Waveform, rOhms float64) *circuit.Circuit {
	c := circuit.New("nanowire-divider (Fig 7b)")
	c.AddVSource("V1", "in", "0", w)
	c.AddResistor("R1", "in", "d", rOhms)
	c.AddDevice("N1", "d", "0", device.NewNanowire())
	c.AddCapacitor("CD", "d", "0", 10e-15)
	return c
}

// FETRTDInverter is the Figure 8(a) circuit: series RTD pair between VDD
// and ground with an NMOS pull-down on the junction. With the 1.5x load
// area the static states are unique: in=0 V -> out = 1.07 V,
// in = 1.2 V -> out = 0.18 V.
func FETRTDInverter(vin device.Waveform) *circuit.Circuit {
	c := circuit.New("fet-rtd-inverter (Fig 8a)")
	c.AddVSource("VDD", "vdd", "0", device.DC(VDDInverter))
	c.AddVSource("VIN", "in", "0", vin)
	c.AddDevice("RL", "vdd", "out", device.NewRTD().WithArea(1.5))
	c.AddDevice("RD", "out", "0", device.NewRTD())
	m, _ := device.NewMOSFET(device.NMOS, 5e-3, 1, 1, 0.5)
	c.AddFET("M1", "out", "in", "0", m)
	c.AddCapacitor("CL", "out", "0", 20e-15)
	c.AddCapacitor("CIN", "in", "0", 1e-15)
	return c
}

// InverterInput is the Figure 8 stimulus: a 0 <-> VDD pulse.
func InverterInput() device.Waveform {
	return device.Pulse{V1: 0, V2: VDDInverter, Delay: 100e-9, Rise: 1e-9, Fall: 1e-9, Width: 200e-9}
}

// RTDDFF is the Figure 9(a) circuit: a MOBILE (MOnostable-BIstable Logic
// Element) D-flip-flop. The clocked bias drives a series RTD pair whose
// load is 1.1x the driver; a weak data FET in parallel with the driver
// tilts the monostable->bistable decision at each rising clock edge.
// The output q is return-to-zero and *inverting* (q = NOT d sampled at
// the rising edge), the native polarity of a single MOBILE stage.
func RTDDFF(clk, data device.Waveform) *circuit.Circuit {
	c := circuit.New("rtd-d-flip-flop (Fig 9a)")
	c.AddVSource("VCK", "ck", "0", clk)
	c.AddVSource("VD", "d", "0", data)
	c.AddDevice("RL", "ck", "q", device.NewRTD().WithArea(1.1))
	c.AddDevice("RD", "q", "0", device.NewRTD())
	m, _ := device.NewMOSFET(device.NMOS, 1e-3, 1, 1, 0.5)
	c.AddFET("MD", "q", "d", "0", m)
	c.AddCapacitor("CQ", "q", "0", 20e-15)
	c.AddCapacitor("CDT", "d", "0", 1e-15)
	return c
}

// DFFClock is the Figure 9(b) waveform: 100 ns period, rising edges at
// 50, 150, 250, 350 ns.
func DFFClock() device.Waveform {
	return device.Clock(0, VDDInverter, 100e-9, 2e-9)
}

// DFFData is the Figure 9(c) input: high until it switches at t = 300 ns.
func DFFData() device.Waveform {
	d, _ := device.NewPWL([]float64{0, 299e-9, 301e-9}, []float64{VDDInverter, VDDInverter, 0})
	return d
}

// NoisyRCNode is the Figure 10 substrate: the parasitic RC seen by a
// nanoscale transistor with an uncertain (white noise) current input.
// R = 1 kΩ, C = 1 pF (tau = 1 ns), noise intensity chosen so the
// 0-1 ns window shows a possible performance peak near 0.6 V at the
// paper's 1:10 display ratio.
func NoisyRCNode(sigma float64) *circuit.Circuit {
	c := circuit.New("noisy parasitic RC (Fig 10)")
	is, _ := c.AddISource("IN", "0", "x", device.DC(50e-6))
	is.NoiseSigma = sigma
	c.AddResistor("R1", "x", "0", 1e3)
	c.AddCapacitor("C1", "x", "0", 1e-12)
	return c
}

// RTDChain builds the scaling workload for the speedup experiment: n
// RC-loaded RTD stages driven by a shared step source through per-stage
// resistors. Every stage traverses its NDR region during the transient.
func RTDChain(n int, w device.Waveform) *circuit.Circuit {
	c := circuit.New("rtd-chain")
	c.AddVSource("V1", "in", "0", w)
	for i := 0; i < n; i++ {
		nd := nodeName(i)
		c.AddResistor("R"+nd, "in", nd, 300+float64(i%7)*20)
		c.AddDevice("N"+nd, nd, "0", device.NewRTD())
		c.AddCapacitor("C"+nd, nd, "0", 10e-15)
	}
	return c
}

// RTDPipeline builds the partitioned-engine workload: n RC-loaded RTD
// stages hanging off a shared DC rail, the first `pulsed` stages driven
// instead by their own pulse sources, and adjacent stages coupled by
// weak (250 kΩ) resistors so activity has a conductive path into the
// pipeline yet almost all of it stays quiescent. Under the node-tearing
// partitioner every stage becomes its own block (the rail tears exactly
// at the grounded sources, the stage couplings tear on strength), and
// with dormancy on only the pulsed head of the pipeline does any work
// between breakpoints — the latency-exploitation benchmark of
// `nanobench -solverbench`.
func RTDPipeline(n, pulsed int) *circuit.Circuit {
	c := circuit.New("rtd-pipeline")
	c.AddVSource("VDD", "vdd", "0", device.DC(0.55))
	for i := 0; i < n; i++ {
		nd := nodeName(i)
		rail := "vdd"
		if i < pulsed {
			rail = "p" + nd
			c.AddVSource("VP"+nd, rail, "0", device.Pulse{
				V1: 0.1, V2: 0.9, Delay: 2e-9, Rise: 0.5e-9, Fall: 0.5e-9,
				Width: 3e-9, Period: 8e-9,
			})
		}
		c.AddResistor("R"+nd, rail, nd, 300+float64(i%7)*20)
		c.AddDevice("N"+nd, nd, "0", device.NewRTD())
		c.AddCapacitor("C"+nd, nd, "0", 10e-15)
		if i > 0 {
			c.AddResistor("RC"+nd, nodeName(i-1), nd, 250e3)
		}
	}
	return c
}

// StampLadderSystem restamps the canonical solver-bench system into s: a
// tridiagonal conductance ladder plus one source-incidence pair, shaped
// like a transient engine's per-step assembly. BenchmarkSolverStep
// (bench_test.go) and `nanobench -solverbench` share this single
// definition so the committed BENCH_solver.json always records the same
// workload the Go benchmark measures.
func StampLadderSystem(s linsolve.Solver, n int, g float64) {
	s.Reset()
	StampLadderEntries(s, n, g)
}

// StampLadderEntries stamps the ladder-system entries into any Adder —
// the caller clears the accumulator first. Shared with the naive-path
// reference measurements, which stamp a bare Triplet.
func StampLadderEntries(a stamp.Adder, n int, g float64) {
	for i := 0; i < n-1; i++ {
		a.Add(i, i, 2*g)
		if i > 0 {
			a.Add(i, i-1, -g)
		}
		if i < n-2 {
			a.Add(i, i+1, -g)
		}
	}
	a.Add(0, n-1, 1)
	a.Add(n-1, 0, 1)
}

// RCLadder builds an n-section RC transmission-line ladder driven by w:
// the linear scaling workload where per-step cost is pure solver work
// (no device evaluations). Section impedance 100 Ω / 20 fF.
func RCLadder(n int, w device.Waveform) *circuit.Circuit {
	c := circuit.New("rc-ladder")
	c.AddVSource("V1", nodeName(0), "0", w)
	for i := 1; i <= n; i++ {
		c.AddResistor("R"+nodeName(i), nodeName(i-1), nodeName(i), 100)
		c.AddCapacitor("C"+nodeName(i), nodeName(i), "0", 20e-15)
	}
	return c
}

func nodeName(i int) string { return "n" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
