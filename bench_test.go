// Benchmarks regenerating the cost side of every table and figure in the
// paper's evaluation, plus the infrastructure micro-benches the DESIGN.md
// ablations reference. Run with:
//
//	go test -bench=. -benchmem
//
// Shape expectations (documented in EXPERIMENTS.md): SWEC beats the
// Newton engines per time point everywhere; the Table I cold-start
// protocol shows the paper's 20-40x band; dense/sparse LU cross over
// at linsolve.AutoCrossover (re-measured by BenchmarkSolverStep).
package nanosim_test

import (
	"fmt"
	"testing"

	"nanosim"
	"nanosim/internal/dcop"
	"nanosim/internal/device"
	"nanosim/internal/exp"
	"nanosim/internal/linsolve"
	"nanosim/internal/randx"
	"nanosim/internal/sde"
	"nanosim/internal/spmat"
)

// BenchmarkTable1DCSweep is Table I: the RTD divider I-V sweep under the
// three protocols.
func BenchmarkTable1DCSweep(b *testing.B) {
	mk := func() *nanosim.Circuit {
		c := nanosim.NewCircuit("table1")
		c.AddVSource("V1", "in", "0", nanosim.DC(0))
		c.AddResistor("R1", "in", "d", 300)
		c.AddDevice("N1", "d", "0", nanosim.NewRTD())
		return c
	}
	b.Run("swec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.Sweep(mk(), "V1", 0, 1.5, 151, "N1", nanosim.DCOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mla-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.NewtonSweep(mk(), "V1", 0, 1.5, 151, "N1",
				nanosim.NewtonDCOptions{Limit: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mla-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.NewtonSweep(mk(), "V1", 0, 1.5, 151, "N1",
				nanosim.NewtonDCOptions{Limit: true, ColdStart: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5Conductance compares one differential-conductance
// evaluation against one equivalent-conductance evaluation (the per-step
// device cost behind Figure 5).
func BenchmarkFig5Conductance(b *testing.B) {
	rtd := nanosim.NewRTD()
	b.Run("differential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rtd.G(0.4)
		}
	})
	b.Run("swec-geq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = nanosim.Geq(rtd, 0.4)
		}
	})
}

// BenchmarkFig7aSweep regenerates the Figure 7(a) divider sweep with the
// Aitken-refined accuracy settings.
func BenchmarkFig7aSweep(b *testing.B) {
	c := nanosim.NewCircuit("fig7a")
	c.AddVSource("V1", "in", "0", nanosim.DC(0))
	c.AddResistor("R1", "in", "d", 100)
	c.AddDevice("N1", "d", "0", nanosim.NewRTD())
	c.AddCapacitor("CD", "d", "0", 10e-15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nanosim.Sweep(c, "V1", 0, 1.5, 151, "N1", nanosim.DCOptions{RefineIters: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Inverter times the Figure 8 transient on all four
// engines.
func BenchmarkFig8Inverter(b *testing.B) {
	const tStop = 500e-9
	b.Run("swec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.Transient(exp.FETRTDInverter(exp.InverterInput()),
				nanosim.TranOptions{TStop: tStop}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.TransientNR(exp.FETRTDInverter(exp.InverterInput()),
				nanosim.BaselineOptions{TStop: tStop}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mla", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.TransientMLA(exp.FETRTDInverter(exp.InverterInput()),
				nanosim.BaselineOptions{TStop: tStop}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pwl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.TransientPWL(exp.FETRTDInverter(exp.InverterInput()),
				nanosim.BaselineOptions{TStop: tStop}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9FlipFlop times the Figure 9 MOBILE latch transient.
func BenchmarkFig9FlipFlop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := nanosim.Transient(exp.RTDDFF(exp.DFFClock(), exp.DFFData()),
			nanosim.TranOptions{TStop: 500e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10EM times the Figure 10 stochastic analyses: one
// Euler-Maruyama path and a small ensemble.
func BenchmarkFig10EM(b *testing.B) {
	b.Run("path", func(b *testing.B) {
		ckt := exp.NoisyRCNode(8e-10)
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.Stochastic(ckt, nanosim.NoiseOptions{
				TStop: 1e-9, Steps: 400, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ensemble100", func(b *testing.B) {
		ckt := exp.NoisyRCNode(8e-10)
		for i := 0; i < b.N; i++ {
			if _, err := nanosim.MonteCarlo(ckt, nanosim.EnsembleOptions{
				Base:  nanosim.NoiseOptions{TStop: 1e-9, Steps: 200, Seed: uint64(i)},
				Paths: 100,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpeedupChain is the headline scaling comparison: SWEC vs the
// Newton baseline on the same fixed grid across chain sizes.
func BenchmarkSpeedupChain(b *testing.B) {
	step := nanosim.Pulse{V1: 0.3, V2: 1.1, Delay: 20e-9, Rise: 2e-9, Fall: 2e-9, Width: 100e-9}
	const tStop, h = 200e-9, 0.5e-9
	for _, n := range []int{5, 20, 60, 200} {
		b.Run(fmt.Sprintf("swec-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nanosim.Transient(exp.RTDChain(n, step), nanosim.TranOptions{
					TStop: tStop, FixedStep: true, HInit: h}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("nr-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nanosim.TransientNR(exp.RTDChain(n, step), nanosim.BaselineOptions{
					TStop: tStop, HInit: h, HMax: h, HMin: h}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolver locates the dense/sparse LU crossover that
// linsolve.Auto encodes (ABL-SOLVE). Each iteration is one repeated
// solve against an unchanged matrix — both backends reuse their
// factorization, so this isolates triangular-solve cost.
func BenchmarkSolver(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		build := func(s linsolve.Solver) {
			for i := 0; i < n; i++ {
				s.Add(i, i, 2.1)
				if i > 0 {
					s.Add(i, i-1, -1)
				}
				if i < n-1 {
					s.Add(i, i+1, -1)
				}
			}
		}
		rhs := make([]float64, n)
		rhs[0] = 1
		out := make([]float64, n)
		b.Run(fmt.Sprintf("dense-n%d", n), func(b *testing.B) {
			s := linsolve.NewDense(n, nil)
			build(s)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse-n%d", n), func(b *testing.B) {
			s := linsolve.NewSparse(n, nil)
			build(s)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolverStep is the per-time-point hot path the tentpole
// optimizes: a full Reset → restamp → Solve cycle with pattern-stable
// values. "sparse" uses the compiled-pattern + symbolic-reuse path;
// "sparse-naive" rebuilds the map triplet and re-runs the full
// min-degree factorization every cycle (the pre-optimization behaviour,
// kept as the regression reference). The dense/sparse crossover measured
// here calibrates linsolve.AutoCrossover; `nanobench -solverbench`
// records the same measurement to BENCH_solver.json.
func BenchmarkSolverStep(b *testing.B) {
	for _, n := range []int{16, 24, 32, 64, 200, 512} {
		rhs := make([]float64, n)
		rhs[0] = 1
		out := make([]float64, n)
		b.Run(fmt.Sprintf("dense-n%d", n), func(b *testing.B) {
			s := linsolve.NewDense(n, nil)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse-n%d", n), func(b *testing.B) {
			s := linsolve.NewSparse(n, nil)
			exp.StampLadderSystem(s, n, 1e-3)
			if err := s.Solve(rhs, out); err != nil {
				b.Fatal(err) // compile pattern + symbolic analysis once
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse-naive-n%d", n), func(b *testing.B) {
			t := spmat.NewTriplet(n, n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.Zero()
				exp.StampLadderEntries(t, n, 1e-3+1e-9*float64(i%7))
				f, err := spmat.Factor(t, nil)
				if err != nil {
					b.Fatal(err)
				}
				f.Solve(rhs, out, nil)
			}
		})
	}
}

// BenchmarkLadderRC is the n≥200 scaling bench on a pure RC ladder: the
// steady-state transient stepping cost with no device evaluations, so
// the solver hot path dominates. Run with -benchmem: the sparse path
// must report 0 allocs/op in steady state.
func BenchmarkLadderRC(b *testing.B) {
	step := nanosim.Pulse{V1: 0, V2: 1, Delay: 5e-9, Rise: 1e-9, Fall: 1e-9, Width: 60e-9}
	for _, n := range []int{200, 500} {
		b.Run(fmt.Sprintf("swec-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := nanosim.Transient(exp.RCLadder(n, step), nanosim.TranOptions{
					TStop: 100e-9, FixedStep: true, HInit: 0.5e-9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeviceEval times the compact models (the inner loop of every
// engine).
func BenchmarkDeviceEval(b *testing.B) {
	rtd := device.NewRTD()
	wire := device.NewNanowire()
	rtt := device.NewRTT()
	b.Run("rtd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rtd.I(0.4)
		}
	})
	b.Run("nanowire", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = wire.I(0.9)
		}
	})
	b.Run("rtt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rtt.I(1.1)
		}
	})
}

// BenchmarkWienerPath times stochastic path generation (ABL-EM
// infrastructure).
func BenchmarkWienerPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = randx.NewWiener(randx.Split(1, i), 1e-9, 512)
	}
}

// BenchmarkItoSums times the eq (15)/(16) discretizations.
func BenchmarkItoSums(b *testing.B) {
	w := randx.NewWiener(randx.New(5), 1, 1024)
	b.Run("ito", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sde.ItoWdW(w)
		}
	})
	b.Run("stratonovich", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sde.StratonovichWdW(w)
		}
	})
}

// BenchmarkScalarNewtonVsGeq compares the per-point cost of the two
// linearizations on the Figure 2 load line (dcop infrastructure).
func BenchmarkScalarNewtonVsGeq(b *testing.B) {
	rtd := device.NewRTD()
	b.Run("newton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dcop.ScalarNewton(rtd, 0.8, 600, 0.1, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}
