package nanosim

import (
	"nanosim/internal/circuit"
	"nanosim/internal/setsim"
	"nanosim/internal/units"
)

// SETOptions configures a single-electron kinetic Monte Carlo transient
// (see internal/setsim for field-by-field documentation; zero values
// select defaults — 4.2 K bath, single seed-0 stream).
type SETOptions = setsim.Options

// SETResult is a finished kinetic Monte Carlo transient: bin-averaged
// electrode currents, island potentials and excess-electron counts,
// plus the time-weighted island occupancy the master equation predicts.
type SETResult = setsim.Result

// SETTransient runs the single-electron tunnel-junction engine: orthodox
// tunneling rates drive a next-event kinetic Monte Carlo over the
// circuit's Island/TunnelJunction elements (Circuit.AddIsland,
// Circuit.AddTunnelJunction, or .island/Jxx netlist cards). Electrodes
// tied directly to a grounded source follow that waveform; electrodes
// fed through other components are co-simulated, with the device's
// bin-averaged current stamped into the surrounding circuit as a
// step-wise equivalent conductance and the environment re-solved once
// per bin — the SWEC philosophy applied at the engine boundary.
//
// Results are reproducible: equal seeds give bit-identical waveforms on
// any machine.
func SETTransient(ckt *Circuit, opt SETOptions) (*SETResult, error) {
	return setsim.Transient(ckt, opt)
}

// SETMapOptions configures a Coulomb-diamond map: a 2-D (gate x drain)
// bias sweep measuring mean drain current at every point.
type SETMapOptions = setsim.MapOptions

// SETMapResult is a finished Coulomb-diamond map; GatePeriod extracts
// the Coulomb-oscillation period (e/Cgate for a clean SET).
type SETMapResult = setsim.MapResult

// SETMap sweeps two grounded sources over their grids and measures the
// mean drain-electrode current: the characterise-style 2-D input sweep
// whose contours are the Coulomb diamonds. The default point solver is
// the exact master equation; METHOD "kmc" averages seeded stochastic
// windows instead (point k draws from randx.Split(Seed, k), so the map
// is bit-identical at any Workers count).
func SETMap(ckt *Circuit, opt SETMapOptions) (*SETMapResult, error) {
	return setsim.Map(ckt, opt)
}

// SETMEOptions configures the master-equation steady-state solver used
// by SETMap's default method.
type SETMEOptions = setsim.MEOptions

// ElectronCharge is the elementary charge in coulombs — the natural
// current scale of single-electron results (I = e x rate).
const ElectronCharge = units.Q

// Island marks a node as a Coulomb-blockade island (see
// Circuit.AddIsland).
type Island = circuit.Island

// TunnelJunction is an ultrasmall tunnel junction, capacitance C in
// parallel with a stochastic tunnel resistance RT (see
// Circuit.AddTunnelJunction).
type TunnelJunction = circuit.TunnelJunction
