// Package nanosim is a statistical circuit simulator for nanotechnology
// devices, reproducing "Nano-Sim: A Step Wise Equivalent Conductance
// based Statistical Simulator for Nanotechnology Circuit Design"
// (Sukhwani, Padmanabhan, Wang — DATE 2005).
//
// Nanodevices such as resonant tunneling diodes (RTDs), resonant
// tunneling transistors (RTTs) and carbon nanotubes exhibit
// non-monotonic I-V characteristics whose negative differential
// resistance (NDR) regions make SPICE-style Newton-Raphson iteration
// oscillate or converge falsely. Nano-Sim avoids the problem twice over:
//
//   - the SWEC transient engine replaces every nonlinear device with its
//     step-wise equivalent conductance Geq(V) = I(V)/V — always positive
//     for passive devices — and integrates a linear time-varying system
//     with no Newton iteration at all (see Transient);
//   - the Euler-Maruyama engine extends the same machinery to circuits
//     with uncertain (white noise) inputs, predicting transient
//     statistics and window peaks instead of averages (see Stochastic
//     and MonteCarlo).
//
// The statistical machinery also covers the paper's other uncertainty
// axis, device-parameter spread: Vary runs a process-variation Monte
// Carlo (envelopes, histograms, yield against spec limits) and
// ParamSweep explores deterministic parameter grids, both reusing
// per-worker solver state across trials.
//
// Baseline engines (a SPICE3-style Newton simulator, the
// Bhattacharya-Mazumder MLA, and an ACES-style piecewise-linear engine)
// ship alongside so every comparison in the paper can be regenerated;
// see cmd/nanobench.
//
// # Quick start
//
//	ckt := nanosim.NewCircuit("rtd divider")
//	ckt.AddVSource("V1", "in", "0", nanosim.DC(0.8))
//	ckt.AddResistor("R1", "in", "d", 600)
//	ckt.AddDevice("N1", "d", "0", nanosim.NewRTD())
//	ckt.AddCapacitor("CD", "d", "0", nanosim.MustParse("10f"))
//
//	res, err := nanosim.Transient(ckt, nanosim.TranOptions{TStop: 100e-9})
//	if err != nil { ... }
//	fmt.Println(res.Waves.Get("v(d)").Final())
package nanosim

import (
	"nanosim/internal/circuit"
	"nanosim/internal/device"
	"nanosim/internal/units"
)

// Circuit is a mutable netlist; build it with NewCircuit and the Add*
// methods, then hand it to an analysis function. See internal/circuit
// for the full builder surface.
type Circuit = circuit.Circuit

// Element is any circuit component.
type Element = circuit.Element

// NodeID identifies a circuit node; 0 is ground.
type NodeID = circuit.NodeID

// NewCircuit returns an empty circuit containing only the ground node
// ("0", aliased "gnd"/"GND").
func NewCircuit(title string) *Circuit { return circuit.New(title) }

// IVModel is a voltage-controlled two-terminal device model: anything
// implementing I(v) and dI/dV can be placed with Circuit.AddDevice.
type IVModel = device.IV

// RTD is the Schulman resonant tunneling diode model (paper eq 4).
type RTD = device.RTD

// NewRTD returns the default RTD: a sub-volt resonance with peak
// 0.241 V / 1.23 mA, valley 0.515 V / 0.41 mA, PVR 3.0.
func NewRTD() *RTD { return device.NewRTD() }

// NewRTDDate05 returns the RTD with the literal constants printed in the
// paper's §5.2 (resonance near 3.5 V; see DESIGN.md).
func NewRTDDate05() *RTD { return device.NewRTDDate05() }

// NewRTDParams builds an RTD from explicit Schulman parameters
// (A, B, C, D, n1, n2, H) with thermal exponent scaling.
func NewRTDParams(a, b, c, d, n1, n2, h float64) (*RTD, error) {
	return device.NewRTDParams(a, b, c, d, n1, n2, h)
}

// Nanowire is the carbon-nanotube conductance-staircase model (paper
// Fig 1b).
type Nanowire = device.Nanowire

// NewNanowire returns a 4-channel quantum wire with 0.4 V subband
// spacing.
func NewNanowire() *Nanowire { return device.NewNanowire() }

// NewNanowireParams builds a custom wire: channel count, subband
// spacing, thermal smearing and per-channel conductance.
func NewNanowireParams(steps int, stepV, width, gq float64) (*Nanowire, error) {
	return device.NewNanowireParams(steps, stepV, width, gq)
}

// RTT is a multi-peak resonant tunneling transistor characteristic
// (paper Fig 1a).
type RTT = device.RTT

// NewRTT returns a 3-peak RTT.
func NewRTT() *RTT { return device.NewRTT() }

// Diode is the Shockley junction diode with exponent capping.
type Diode = device.Diode

// NewDiode returns a 1 fA, ideality-1 diode.
func NewDiode() *Diode { return device.NewDiode() }

// Esaki is the classic tunnel diode: closed-form NDR with the peak at
// exactly (Vp, Ip).
type Esaki = device.Esaki

// NewEsaki returns a germanium-flavoured tunnel diode (1 mA peak at
// 65 mV).
func NewEsaki() *Esaki { return device.NewEsaki() }

// NewEsakiParams builds a custom tunnel diode from peak current, peak
// voltage and thermionic saturation current.
func NewEsakiParams(ip, vp, is float64) (*Esaki, error) { return device.NewEsakiParams(ip, vp, is) }

// MOSFET is the level-1 square-law transistor (paper eq 2).
type MOSFET = device.MOSFET

// FETPolarity selects NMOS or PMOS.
type FETPolarity = device.FETPolarity

// FET polarities.
const (
	NMOS = device.NMOS
	PMOS = device.PMOS
)

// NewNMOS returns a generic NMOS (beta = 1 mA/V², Vth = 1 V).
func NewNMOS() *MOSFET { return device.NewNMOS() }

// NewPMOS returns a generic PMOS.
func NewPMOS() *MOSFET { return device.NewPMOS() }

// NewMOSFET builds a custom transistor.
func NewMOSFET(p FETPolarity, k, w, l, vth float64) (*MOSFET, error) {
	return device.NewMOSFET(p, k, w, l, vth)
}

// IVTable is a piecewise-linear tabulated device.
type IVTable = device.Table

// NewIVTable builds a PWL device from matched (voltage, current)
// breakpoints.
func NewIVTable(vs, is []float64) (*IVTable, error) { return device.NewTable(vs, is) }

// Geq returns the step-wise equivalent conductance I(v)/v of any model,
// with the analytic v -> 0 limit (paper eq 6).
func Geq(m IVModel, v float64) float64 { return device.Geq(m, v) }

// Waveform is a deterministic source value over time.
type Waveform = device.Waveform

// DC is a constant source value.
type DC = device.DC

// Pulse is the SPICE PULSE source.
type Pulse = device.Pulse

// Sin is the SPICE SIN source.
type Sin = device.Sin

// Exp is the SPICE EXP source.
type Exp = device.Exp

// PWLWave is the SPICE piecewise-linear source.
type PWLWave = device.PWL

// NewPWLWave builds a PWL source through (t, v) breakpoints.
func NewPWLWave(ts, vs []float64) (*PWLWave, error) { return device.NewPWL(ts, vs) }

// Clock returns a 50%-duty pulse train (first rising edge at period/2).
func Clock(v1, v2, period, edge float64) Pulse { return device.Clock(v1, v2, period, edge) }

// Parse converts a SPICE-style value string ("1k", "2.5u", "1meg") to a
// float64.
func Parse(s string) (float64, error) { return units.Parse(s) }

// MustParse is Parse for literals; it panics on malformed input.
func MustParse(s string) float64 { return units.MustParse(s) }

// FormatValue renders a value in engineering notation ("2.5u").
func FormatValue(v float64, digits int) string { return units.Format(v, digits) }
