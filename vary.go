package nanosim

import (
	"nanosim/internal/vary"
)

// VarySpec declares one Monte Carlo parameter variation: which element
// and parameter vary, the distribution, the tolerance (absolute or
// relative) and whether matched elements share a draw (LOT) or draw
// independently (DEV).
type VarySpec = vary.Spec

// VaryDist selects a VarySpec's sampling distribution.
type VaryDist = vary.Dist

// Sampling distributions for VarySpec.
const (
	// VaryGauss perturbs additively with a normal draw.
	VaryGauss VaryDist = vary.Gauss
	// VaryUniform perturbs additively with a uniform draw; Sigma is the
	// half-range.
	VaryUniform VaryDist = vary.Uniform
	// VaryLognormal perturbs multiplicatively, preserving positivity.
	VaryLognormal VaryDist = vary.Lognormal
)

// ParseVaryDist reads a netlist DIST= keyword ("GAUSS", "UNIFORM",
// "LOGNORMAL"; case-insensitive, "" = gauss) into a VaryDist.
func ParseVaryDist(s string) (VaryDist, error) { return vary.ParseDist(s) }

// VaryJob selects the analysis every Monte Carlo trial or sweep point
// runs: SWEC transient ("tran", default), SWEC DC operating point
// ("op"), one Euler-Maruyama path ("em"), or one single-electron kMC
// transient ("set") — the stochastic kinds combining device parameter
// spread with per-trial randomness in a single statistical run.
type VaryJob = vary.Job

// VaryLimit is one yield specification: a trial passes when the chosen
// measure ("final", "min" or "max") of a signal lies within [Lo, Hi].
type VaryLimit = vary.Limit

// VaryOptions configures a process-variation Monte Carlo batch.
type VaryOptions = vary.Options

// VaryResult aggregates a Monte Carlo batch: per-signal mean/std and
// quantile envelopes, per-trial measure samples, histograms, and yield
// against the spec limits.
type VaryResult = vary.Result

// VarySignalStats is one signal's aggregate within a VaryResult.
type VarySignalStats = vary.SignalStats

// Vary runs a process-variation Monte Carlo: opt.Trials independently
// perturbed copies of the circuit, each simulated by the selected
// analysis and aggregated per signal. This is the paper's "statistical
// simulator for nanotechnology circuit design" applied to the device
// axis — RTD peak spread, nanowire geometry — rather than the input
// noise axis of MonteCarlo.
//
// Results are reproducible: trial t derives everything from
// (opt.Seed, t), so the batch is bit-identical at any Workers count.
// Each worker reuses one solver across its trials — the compiled stamp
// pattern and symbolic LU factorization carry over, so per-step work
// stays allocation-free (see DESIGN.md §9).
func Vary(ckt *Circuit, opt VaryOptions) (*VaryResult, error) {
	return vary.MonteCarlo(ckt, opt)
}

// ParamSweepAxis declares one dimension of a deterministic parameter
// grid (the netlist .step card).
type ParamSweepAxis = vary.SweepAxis

// ParamSweepOptions configures a parameter sweep.
type ParamSweepOptions = vary.SweepOptions

// ParamSweepResult holds per-grid-point scalar measures of the swept
// circuit.
type ParamSweepResult = vary.SweepResult

// ParamSweep steps circuit parameters across the cartesian grid of the
// axes (last axis fastest), running the job at every point with the
// same per-worker solver reuse as Vary. It is the design-space
// exploration counterpart of Sweep, which sweeps a source's DC bias
// within one analysis.
func ParamSweep(ckt *Circuit, opt ParamSweepOptions) (*ParamSweepResult, error) {
	return vary.Sweep(ckt, opt)
}

// CloneCircuit returns an independent deep copy of a circuit; device
// models are deep-copied, so perturbing the clone never mutates the
// original. Vary and ParamSweep clone internally — reach for this only
// when building perturbed circuits by hand.
func CloneCircuit(c *Circuit) *Circuit { return c.Clone() }
