// Command nanosimd serves the Nano-Sim engines as a long-running
// HTTP/JSON batch-simulation service.
//
// Netlist decks are submitted as jobs, run on a bounded worker pool and
// streamed back as NDJSON waveforms; a deck-compile cache keyed by
// content hash keeps the parsed circuit, compiled stamp pattern and
// symbolic LU analysis of each topology alive across submissions, so
// repeated or parameter-varied runs of the same deck skip parse and
// symbolic work entirely. With -data the service is restart-safe: job
// lifecycle is journaled, results and waveform payloads are spilled
// under the data dir, and a restart replays the journal and re-queues
// jobs the previous process never finished. See docs/API.md for the
// endpoints, wire schemas and operating notes.
//
// Usage:
//
//	nanosimd [-addr :8086] [-workers N] [-queue 256] [-max-decks 128]
//	         [-data DIR] [-fsync] [-drain-timeout 30s] [-job-timeout 0]
//	         [-rate 0] [-burst 0] [-client-jobs 0] [-queue-wait 0]
//	         [-replicas URL,URL,...] [-shards-per-replica 1]
//	         [-shard-timeout 5m] [-shard-retries 2] [-faultpoint SPEC]
//
// With -replicas the process becomes a Monte Carlo coordinator: mc jobs
// are split into trial-range shards dispatched to the listed worker
// nanosimd instances and merged back into the single-process result;
// every other analysis still runs locally. See docs/API.md ("Scaling
// out") for the shard lifecycle.
//
// Example session:
//
//	nanosimd -addr :8086 -data /var/lib/nanosimd &
//	curl -s :8086/v1/jobs -d '{"deck":"* rc\nV1 in 0 PULSE(0 1 1n 1n 1n 20n)\nR1 in out 1k\nC1 out 0 1p\n.tran 0.1n 50n\n.end\n"}'
//	curl -s :8086/v1/jobs/job-1/result
//	curl -s :8086/v1/jobs/job-1/stream
//	curl -s :8086/metrics
//
// On SIGTERM the service drains: readiness (/readyz) flips to 503 so
// load balancers stop routing here, new submissions are rejected with
// Retry-After, in-flight jobs get -drain-timeout to finish, and
// whatever is still running at the deadline is checkpointed to the
// journal for the next boot to re-queue. SIGINT (ctrl-C) does the same
// with a short deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nanosim/internal/faultpoint"
	"nanosim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-job queue depth (0 = default 256)")
	maxDecks := flag.Int("max-decks", 0, "deck-compile cache entries (0 = default 128)")
	maxDeckKB := flag.Int("max-deck-kb", 0, "largest accepted deck in KiB (0 = default 1024)")
	data := flag.String("data", "", "durable job-store directory (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "fsync the journal per event (restart-safe across power loss)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline before in-flight jobs are checkpointed")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock limit (0 = unlimited)")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client submission burst (0 = 2x rate)")
	clientJobs := flag.Int("client-jobs", 0, "per-client live-job cap (0 = unlimited)")
	queueWait := flag.Duration("queue-wait", 0, "queue-wait deadline; longer estimated waits are shed with 503 (0 = unlimited)")
	replicas := flag.String("replicas", "", "comma-separated worker base URLs; enables coordinator mode for mc jobs")
	shardsPer := flag.Int("shards-per-replica", 0, "shards dispatched per replica (0 = default 1)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard attempt deadline (0 = default 5m)")
	shardRetries := flag.Int("shard-retries", 0, "shard failover attempts across replicas (0 = default 2, negative disables)")
	fault := flag.String("faultpoint", "", "arm a fault-injection site, site:directive[,...] (tests only; e.g. serve.worker.run:exit,times=1)")
	flag.Parse()

	if *fault != "" {
		site, f, err := faultpoint.Parse(*fault)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nanosimd:", err)
			os.Exit(2)
		}
		faultpoint.Set(site, f)
		log.Printf("nanosimd: armed faultpoint %s", *fault)
	}
	var replicaList []string
	if *replicas != "" {
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicaList = append(replicaList, u)
			}
		}
	}

	srv, err := serve.New(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxDecks:      *maxDecks,
		MaxDeckBytes:  int64(*maxDeckKB) << 10,
		DataDir:       *data,
		FsyncJournal:  *fsync,
		JobTimeout:    *jobTimeout,
		QueueWaitMax:  *queueWait,
		RatePerSec:    *rate,
		RateBurst:     *burst,
		MaxClientJobs: *clientJobs,

		Replicas:         replicaList,
		ShardsPerReplica: *shardsPer,
		ShardTimeout:     *shardTimeout,
		ShardRetries:     *shardRetries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nanosimd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful drain: keep serving HTTP (status polls, result fetches,
	// health probes) while in-flight jobs finish, then stop the listener.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		log.Printf("nanosimd: draining (deadline %v)", *drainTimeout)
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(dctx); err != nil {
			log.Printf("nanosimd: %v", err)
		}
		dcancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("nanosimd: shutdown: %v", err)
		}
	}()

	if len(replicaList) > 0 {
		log.Printf("nanosimd: coordinator mode, %d replicas", len(replicaList))
	}
	log.Printf("nanosimd: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "nanosimd:", err)
		os.Exit(1)
	}
	<-done
}
