// Command nanosimd serves the Nano-Sim engines as a long-running
// HTTP/JSON batch-simulation service.
//
// Netlist decks are submitted as jobs, run on a bounded worker pool and
// streamed back as NDJSON waveforms; a deck-compile cache keyed by
// content hash keeps the parsed circuit, compiled stamp pattern and
// symbolic LU analysis of each topology alive across submissions, so
// repeated or parameter-varied runs of the same deck skip parse and
// symbolic work entirely. See docs/API.md for the endpoints and wire
// schemas.
//
// Usage:
//
//	nanosimd [-addr :8086] [-workers N] [-queue 256] [-max-decks 128]
//
// Example session:
//
//	nanosimd -addr :8086 &
//	curl -s :8086/v1/jobs -d '{"deck":"* rc\nV1 in 0 PULSE(0 1 1n 1n 1n 20n)\nR1 in out 1k\nC1 out 0 1p\n.tran 0.1n 50n\n.end\n"}'
//	curl -s :8086/v1/jobs/job-1/result
//	curl -s :8086/v1/jobs/job-1/stream
//	curl -s :8086/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nanosim/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-job queue depth (0 = default 256)")
	maxDecks := flag.Int("max-decks", 0, "deck-compile cache entries (0 = default 128)")
	maxDeckKB := flag.Int("max-deck-kb", 0, "largest accepted deck in KiB (0 = default 1024)")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxDecks:     *maxDecks,
		MaxDeckBytes: int64(*maxDeckKB) << 10,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: stop listening, cancel in-flight jobs, drain.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sig
		log.Print("nanosimd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("nanosimd: shutdown: %v", err)
		}
		srv.Close()
	}()

	log.Printf("nanosimd: listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "nanosimd:", err)
		os.Exit(1)
	}
	<-done
}
