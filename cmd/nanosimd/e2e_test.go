package main

// Real-process end-to-end gauntlet for distributed Monte Carlo: the
// tests build the nanosimd binary, launch one coordinator plus three
// worker replicas as separate OS processes wired together over
// loopback HTTP, and assert the merged result against a single-process
// run of the same deck and seed — including under an injected worker
// crash (-faultpoint serve.worker.run:exit,times=1 kills a replica on
// its first engine run, forcing failover).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"nanosim/internal/serve"
	"nanosim/internal/vary"
)

const e2eMCDeck = `* rtd divider mc
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.tran 0.25n 10n
.mc 96 SEED=1
.vary N1(A) DEV=5%
.limit v(d) final 0 1.5
.print v(d)
.end
`

var nanosimdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "nanosimd-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	nanosimdBin = filepath.Join(dir, "nanosimd")
	if out, err := exec.Command("go", "build", "-o", nanosimdBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building nanosimd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freeAddr reserves a loopback port and releases it for the child
// process to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startNanosimd launches one nanosimd process and waits for liveness.
func startNanosimd(t *testing.T, args ...string) string {
	t.Helper()
	addr := freeAddr(t)
	var logs bytes.Buffer
	cmd := exec.Command(nanosimdBin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		if t.Failed() {
			t.Logf("nanosimd %v logs:\n%s", args, logs.String())
		}
	})
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nanosimd at %s never became healthy; logs:\n%s", addr, logs.String())
	return ""
}

var e2eClient = &http.Client{Timeout: 3 * time.Minute}

func e2eJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		raw, merr := json.Marshal(body)
		if merr != nil {
			t.Fatal(merr)
		}
		req, err = http.NewRequest(method, url, bytes.NewReader(raw))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e2eClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// runE2EMC submits the gauntlet deck and long-polls the result.
func runE2EMC(t *testing.T, base string) *serve.MCResult {
	t.Helper()
	var info serve.JobInfo
	if code := e2eJSON(t, http.MethodPost, base+"/v1/jobs", serve.SubmitRequest{Deck: e2eMCDeck}, &info); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	var res serve.Result
	if code := e2eJSON(t, http.MethodGet, base+"/v1/jobs/"+info.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if res.Kind != "mc" || res.MC == nil {
		t.Fatalf("result kind %q", res.Kind)
	}
	return res.MC
}

// assertE2EMerged compares the merged document against the
// single-process reference: trials, failures, yield and the per-signal
// final-value statistics are computed from exact per-trial scalars, so
// they must match bit for bit across process boundaries.
func assertE2EMerged(t *testing.T, merged, single *serve.MCResult) {
	t.Helper()
	if merged.Trials != single.Trials || merged.Failed != single.Failed {
		t.Fatalf("trials/failed %d/%d, want %d/%d", merged.Trials, merged.Failed, single.Trials, single.Failed)
	}
	if merged.Yield == nil || single.Yield == nil {
		t.Fatalf("missing yield sections (merged %v, single %v)", merged.Yield, single.Yield)
	}
	if *merged.Yield != *single.Yield {
		t.Fatalf("yield %+v, want %+v", *merged.Yield, *single.Yield)
	}
	if len(merged.Stats) != len(single.Stats) {
		t.Fatalf("%d stats entries, want %d", len(merged.Stats), len(single.Stats))
	}
	for i := range single.Stats {
		m, s := merged.Stats[i], single.Stats[i]
		if m.Name != s.Name || m.Mean != s.Mean || m.Std != s.Std {
			t.Fatalf("stats[%d] exact fields %+v, want %+v", i, m, s)
		}
		// Final-value quantiles are exact on both sides (computed from
		// the complete scalar vector), so they match bitwise too; keep a
		// sketch-style bound as the documented contract.
		for _, pair := range [][2]float64{{m.Q05, s.Q05}, {m.Median, s.Median}, {m.Q95, s.Q95}} {
			tol := vary.SketchAlpha * math.Max(math.Abs(pair[1]), 1e-9)
			if math.Abs(pair[0]-pair[1]) > tol {
				t.Fatalf("stats[%d] quantile %g, want %g (tolerance %g)", i, pair[0], pair[1], tol)
			}
		}
	}
}

// TestMultiReplicaMergedMatchesSingleProcess is the happy-path gauntlet:
// coordinator + three worker processes, merged output vs one process.
func TestMultiReplicaMergedMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e")
	}
	w1 := startNanosimd(t)
	w2 := startNanosimd(t)
	w3 := startNanosimd(t)
	coord := startNanosimd(t, "-replicas", w1+","+w2+","+w3)

	single := runE2EMC(t, w1)
	merged := runE2EMC(t, coord)
	assertE2EMerged(t, merged, single)

	var ms serve.MetricsSnapshot
	if code := e2eJSON(t, http.MethodGet, coord+"/metrics", nil, &ms); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if ms.Coordinator == nil || ms.Coordinator.Merged != 1 || ms.Coordinator.Dispatched < 3 {
		t.Fatalf("coordinator metrics %+v", ms.Coordinator)
	}
}

// TestMultiReplicaWorkerCrashFailover kills one worker mid-job via the
// faultpoint flag (the process exits on its first engine run) and
// requires the coordinator to fail the shard over and still merge the
// identical result, with the failover visible in /metrics.
func TestMultiReplicaWorkerCrashFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e")
	}
	w1 := startNanosimd(t)
	w2 := startNanosimd(t)
	crashing := startNanosimd(t, "-faultpoint", "serve.worker.run:exit,times=1")
	coord := startNanosimd(t, "-replicas", w1+","+w2+","+crashing)

	single := runE2EMC(t, w1)
	merged := runE2EMC(t, coord)
	assertE2EMerged(t, merged, single)

	var ms serve.MetricsSnapshot
	if code := e2eJSON(t, http.MethodGet, coord+"/metrics", nil, &ms); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	cm := ms.Coordinator
	if cm == nil || cm.Retries < 1 {
		t.Fatalf("coordinator metrics %+v, want at least one shard failover", cm)
	}
	if cm.Merged != 1 || cm.Failed != 0 {
		t.Fatalf("coordinator metrics %+v, want 1 merged, 0 failed", *cm)
	}
	// The crashed replica must actually be dead — the fault fired.
	if _, err := http.Get(crashing + "/healthz"); err == nil {
		t.Fatal("crashing worker still alive; the worker-run faultpoint never fired")
	}
}
