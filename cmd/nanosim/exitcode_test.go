package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// failMCDeck draws a 200% resistor tolerance: with this seed a good
// fraction of the 16 trials go non-physical (R <= 0) and must fail the
// batch exit status, not just print a FAILED line.
const failMCDeck = `* CLI exit-status deck
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.tran 0.5n 5n
.mc 16 SEED=3
.vary R1 DEV=200%
.print v(d)
.end
`

// failStepDeck sweeps the resistor through zero so interior grid points
// fail.
const failStepDeck = `* CLI exit-status step deck
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.tran 0.5n 5n
.step R1 -200 400 4
.print v(d)
.end
`

// buildCLI compiles the nanosim binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "nanosim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runCLI executes the binary and returns its exit code and output.
func runCLI(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running %s: %v\n%s", bin, err, out)
	return -1, ""
}

func TestExitStatusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the CLI; skipped in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.sp", testDeck)
	failMC := write("failmc.sp", failMCDeck)
	failStep := write("failstep.sp", failStepDeck)
	bad := write("bad.sp", "* broken\nR1 in\n.end\n")

	cases := []struct {
		name string
		args []string
		want func(code int) bool
		grep string
	}{
		{"good deck exits 0", []string{"-plot=false", good}, func(c int) bool { return c == 0 }, ""},
		{"failed trials exit non-zero", []string{"-plot=false", failMC}, func(c int) bool { return c != 0 }, "trials failed"},
		{"failed step points exit non-zero", []string{"-plot=false", failStep}, func(c int) bool { return c != 0 }, "points failed"},
		{"parse error exits non-zero", []string{"-plot=false", bad}, func(c int) bool { return c != 0 }, ""},
		{"usage error exits 2", nil, func(c int) bool { return c == 2 }, ""},
	}
	for _, c := range cases {
		code, out := runCLI(t, bin, c.args...)
		if !c.want(code) {
			t.Errorf("%s: exit code %d\n%s", c.name, code, out)
		}
		if c.grep != "" && !strings.Contains(out, c.grep) {
			t.Errorf("%s: output does not mention %q\n%s", c.name, c.grep, out)
		}
	}
}

func TestRunReportsFailedTrials(t *testing.T) {
	// The in-process check of the same bug: run() must surface failed
	// trials/points as errors so main exits non-zero.
	path := writeDeck(t, failMCDeck)
	err := run(path, testCfg(config{plot: false}))
	if err == nil || !strings.Contains(err.Error(), "trials failed") {
		t.Errorf("mc run with failing trials returned %v", err)
	}
	path = writeDeck(t, failStepDeck)
	err = run(path, testCfg(config{plot: false}))
	if err == nil || !strings.Contains(err.Error(), "points failed") {
		t.Errorf("step run with failing points returned %v", err)
	}
}
