// Command nanosim runs SPICE-flavoured netlists through the Nano-Sim
// engines. Analyses come from the deck's cards:
//
//	.op            SWEC operating point
//	.dc ...        SWEC DC sweep (Figure 7 style I-V extraction)
//	.tran ...      SWEC transient
//	.em ...        Euler-Maruyama transient with NOISE= sources
//
// Usage:
//
//	nanosim [-engine swec|nr|mla|pwl] [-csv out.csv] [-plot] deck.sp
//
// The -engine flag switches the transient engine so the paper's
// comparisons can be run on any deck; DC and EM always use the SWEC
// machinery.
package main

import (
	"flag"
	"fmt"
	"os"

	"nanosim"
	"nanosim/internal/netparse"
)

func main() {
	engine := flag.String("engine", "swec", "transient engine: swec, nr, mla or pwl")
	csvPath := flag.String("csv", "", "write analysis waveforms as CSV to this file")
	plot := flag.Bool("plot", true, "render ASCII plots of the results")
	width := flag.Int("width", 78, "plot width in characters")
	height := flag.Int("height", 16, "plot height in characters")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nanosim [flags] deck.sp\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *engine, *csvPath, *plot, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "nanosim:", err)
		os.Exit(1)
	}
}

func run(path, engine, csvPath string, plot bool, width, height int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	deck, err := netparse.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("* %s\n", deck.Circuit.Title)
	fmt.Printf("* %d elements, %d nodes, %d analyses\n\n",
		len(deck.Circuit.Elements()), deck.Circuit.NumNodes()-1, len(deck.Analyses))
	if len(deck.Analyses) == 0 {
		return fmt.Errorf("deck has no analysis cards (.op/.dc/.tran/.em)")
	}

	var lastWaves *nanosim.WaveSet
	for _, a := range deck.Analyses {
		switch a.Kind {
		case "op":
			res, err := nanosim.OperatingPoint(deck.Circuit, nanosim.DCOptions{})
			if err != nil {
				return fmt.Errorf(".op: %w", err)
			}
			fmt.Printf("== .op (SWEC fixed point, %d iterations) ==\n", res.Iterations)
			for _, n := range deck.Circuit.NodeNames() {
				v := res.X[int(deck.Circuit.Node(n))-1]
				fmt.Printf("  v(%s) = %s\n", n, nanosim.FormatValue(v, 5))
			}
			fmt.Println()
		case "dc":
			res, err := nanosim.Sweep(deck.Circuit, a.Src, a.From, a.To, a.Points, a.Device,
				nanosim.DCOptions{RefineIters: 3})
			if err != nil {
				return fmt.Errorf(".dc: %w", err)
			}
			fmt.Printf("== .dc %s %g -> %g (%d points) ==\n", a.Src, a.From, a.To, a.Points)
			lastWaves = res.Waves
			if plot {
				names := []string{}
				if a.Device != "" {
					names = append(names, "i(dev)")
				}
				if err := res.Waves.Plot(os.Stdout, width, height, names...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "tran":
			waves, stats, err := runTransient(deck.Circuit, engine, a)
			if err != nil {
				return fmt.Errorf(".tran: %w", err)
			}
			fmt.Printf("== .tran to %s (%s engine) ==\n%s\n", nanosim.FormatValue(a.TStop, 3), engine, stats)
			lastWaves = waves
			if plot {
				if err := waves.Plot(os.Stdout, width, height, deck.Prints...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "em":
			res, err := nanosim.Stochastic(deck.Circuit, nanosim.NoiseOptions{
				TStop: a.TStop, Steps: a.Steps, Seed: a.Seed})
			if err != nil {
				return fmt.Errorf(".em: %w", err)
			}
			fmt.Printf("== .em to %s (%d steps, %d noise sources, seed %d) ==\n",
				nanosim.FormatValue(a.TStop, 3), a.Steps, res.NoiseSources, a.Seed)
			lastWaves = res.Waves
			if plot {
				if err := res.Waves.Plot(os.Stdout, width, height, deck.Prints...); err != nil {
					return err
				}
			}
			fmt.Println()
		}
	}
	if csvPath != "" && lastWaves != nil {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lastWaves.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

// runTransient dispatches on the engine flag.
func runTransient(ckt *nanosim.Circuit, engine string, a netparse.Analysis) (*nanosim.WaveSet, string, error) {
	switch engine {
	case "swec", "":
		res, err := nanosim.Transient(ckt, nanosim.TranOptions{
			TStop: a.TStop, HInit: a.TStep, RecordCurrents: true})
		if err != nil {
			return nil, "", err
		}
		return res.Waves, fmt.Sprintf("steps=%d rejected=%d solves=%d (no Newton iterations)",
			res.Stats.Steps, res.Stats.Rejected, res.Stats.Solves), nil
	case "nr", "mla", "pwl":
		opt := nanosim.BaselineOptions{TStop: a.TStop, HInit: a.TStep, RecordCurrents: true}
		var res *nanosim.BaselineResult
		var err error
		switch engine {
		case "nr":
			res, err = nanosim.TransientNR(ckt, opt)
		case "mla":
			res, err = nanosim.TransientMLA(ckt, opt)
		default:
			res, err = nanosim.TransientPWL(ckt, opt)
		}
		if err != nil {
			return nil, "", err
		}
		return res.Waves, fmt.Sprintf("steps=%d rejected=%d NR-iters=%d unconverged=%d",
			res.Stats.Steps, res.Stats.Rejected, res.Stats.NRIters, res.Stats.NonConverged), nil
	default:
		return nil, "", fmt.Errorf("unknown engine %q (want swec, nr, mla or pwl)", engine)
	}
}
