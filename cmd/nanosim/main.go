// Command nanosim runs SPICE-flavoured netlists through the Nano-Sim
// engines. Analyses come from the deck's cards:
//
//	.op            SWEC operating point
//	.dc ...        SWEC DC sweep (Figure 7 style I-V extraction)
//	.ac ...        small-signal frequency sweep + noise spectra
//	.tran ...      SWEC transient
//	.em ...        Euler-Maruyama transient with NOISE= sources
//	.set tran ...  single-electron kinetic Monte Carlo transient
//	.set map ...   Coulomb-diamond map (gate x drain mean current)
//
// Process-variation cards switch the deck into batch mode instead of
// running the analyses one by one:
//
//	.step ...      deterministic parameter sweep (cartesian over cards)
//	.mc N ...      Monte Carlo over the deck's .vary specs, with yield
//	               against the .limit cards
//
// Usage:
//
//	nanosim [-engine swec|nr|mla|pwl] [-csv out.csv] [-plot] deck.sp
//	nanosim -mc 500 -workers 8 deck.sp     (override .mc trial count)
//	nanosim -step deck.sp                  (run only the .step sweep)
//	nanosim -ac deck.sp                    (run only the .ac analyses)
//	nanosim -partition deck.sp             (torn-block SWEC engine, like
//	                                        a '.options partition' card)
//
// The -engine flag switches the transient engine so the paper's
// comparisons can be run on any deck; DC, EM and the batch modes always
// use the SWEC machinery.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"nanosim"
	"nanosim/internal/netparse"
)

// config carries the CLI flags into run.
type config struct {
	engine    string
	csvPath   string
	plot      bool
	width     int
	height    int
	mc        int  // override .mc trial count (0 = deck value)
	step      bool // run only the .step sweep
	ac        bool // run only the .ac analyses
	workers   int
	seed      uint64
	seedSet   bool
	partition bool    // force the torn-block SWEC engine
	gcouple   float64 // partitioner coupling threshold (0 = default)
	threads   int     // engine worker pools (-j; 0 = deck/default)
}

func main() {
	var cfg config
	flag.StringVar(&cfg.engine, "engine", "swec", "transient engine: swec, nr, mla or pwl")
	flag.StringVar(&cfg.csvPath, "csv", "", "write analysis waveforms as CSV to this file")
	flag.BoolVar(&cfg.plot, "plot", true, "render ASCII plots of the results")
	flag.IntVar(&cfg.width, "width", 78, "plot width in characters")
	flag.IntVar(&cfg.height, "height", 16, "plot height in characters")
	flag.IntVar(&cfg.mc, "mc", 0, "run a Monte Carlo with this many trials (overrides the .mc card count)")
	flag.BoolVar(&cfg.step, "step", false, "run only the deck's .step parameter sweep")
	flag.BoolVar(&cfg.ac, "ac", false, "run only the deck's .ac small-signal analyses")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel workers for -mc/-step batches (0 = GOMAXPROCS)")
	flag.BoolVar(&cfg.partition, "partition", false, "run SWEC transients on the torn-block engine (like a '.options partition' card)")
	flag.Float64Var(&cfg.gcouple, "gcouple", 0, "partitioner coupling threshold in (0,1) (0 = engine default)")
	flag.IntVar(&cfg.threads, "j", 0, "worker threads for the partitioned-transient and AC engines (like a '.options threads=' card; results are bit-identical at any value)")
	seed := flag.Uint64("seed", 0, "override the Monte Carlo seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nanosim [flags] deck.sp\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.seedSet = flagWasSet("seed")
	cfg.seed = *seed
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nanosim:", err)
		os.Exit(1)
	}
}

func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func run(path string, cfg config) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	deck, err := netparse.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("* %s\n", deck.Circuit.Title)
	fmt.Printf("* %d elements, %d nodes, %d analyses\n\n",
		len(deck.Circuit.Elements()), deck.Circuit.NumNodes()-1, len(deck.Analyses))
	popt, err := partitionOpts(deck, cfg)
	if err != nil {
		return err
	}
	threads, err := threadsOf(deck, cfg)
	if err != nil {
		return err
	}

	wantMC := cfg.mc > 0 || deck.MC != nil
	wantStep := cfg.step || len(deck.Steps) > 0
	if wantMC || wantStep {
		if wantStep {
			if err := runStep(deck, cfg, popt, threads); err != nil {
				return err
			}
		}
		if wantMC && !cfg.step {
			if err := runMC(deck, cfg, popt, threads); err != nil {
				return err
			}
		}
		return nil
	}

	analyses := deck.Analyses
	if cfg.ac {
		analyses = nil
		for _, a := range deck.Analyses {
			if a.Kind == "ac" {
				analyses = append(analyses, a)
			}
		}
		if len(analyses) == 0 {
			return fmt.Errorf("-ac needs a .ac card in the deck")
		}
	}
	if len(analyses) == 0 {
		return fmt.Errorf("deck has no analysis cards (.op/.dc/.ac/.tran/.em/.set)")
	}
	var lastWaves *nanosim.WaveSet
	for _, a := range analyses {
		switch a.Kind {
		case "op":
			res, err := nanosim.OperatingPoint(deck.Circuit, nanosim.DCOptions{})
			if err != nil {
				return fmt.Errorf(".op: %w", err)
			}
			fmt.Printf("== .op (SWEC fixed point, %d iterations) ==\n", res.Iterations)
			for _, n := range deck.Circuit.NodeNames() {
				v := res.X[int(deck.Circuit.Node(n))-1]
				fmt.Printf("  v(%s) = %s\n", n, nanosim.FormatValue(v, 5))
			}
			fmt.Println()
		case "dc":
			res, err := nanosim.Sweep(deck.Circuit, a.Src, a.From, a.To, a.Points, a.Device,
				nanosim.DCOptions{RefineIters: 3})
			if err != nil {
				return fmt.Errorf(".dc: %w", err)
			}
			fmt.Printf("== .dc %s %g -> %g (%d points) ==\n", a.Src, a.From, a.To, a.Points)
			lastWaves = res.Waves
			if cfg.plot {
				names := []string{}
				if a.Device != "" {
					names = append(names, "i(dev)")
				}
				if err := res.Waves.Plot(os.Stdout, cfg.width, cfg.height, names...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "ac":
			res, err := nanosim.AC(deck.Circuit, nanosim.ACOptions{
				Grid: a.ACGrid, Points: a.Points, FStart: a.From, FStop: a.To, Workers: threads})
			if err != nil {
				return fmt.Errorf(".ac: %w", err)
			}
			fmt.Printf("== .ac %s %d %s -> %s (%d points, %d noise sources, OP in %d iterations) ==\n",
				a.ACGrid, a.Points, nanosim.FormatValue(a.From, 3), nanosim.FormatValue(a.To, 3),
				len(res.Freqs), res.NoiseSources, res.OPIterations)
			lastWaves = res.Waves
			if cfg.plot {
				// A shared .print list may mix time-domain names into an
				// AC deck; keep only the names this sweep produced.
				names := presentNames(res.Waves, deck.Prints)
				if len(names) == 0 {
					// Every vm/vp/vdb/onoise series at once is unreadable;
					// default to the magnitude curves.
					for _, n := range res.Waves.Names() {
						if strings.HasPrefix(n, "vdb(") {
							names = append(names, n)
						}
					}
				}
				if err := res.Waves.Plot(os.Stdout, cfg.width, cfg.height, names...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "tran":
			waves, stats, err := runTransient(deck.Circuit, cfg.engine, a, popt, threads)
			if err != nil {
				return fmt.Errorf(".tran: %w", err)
			}
			fmt.Printf("== .tran to %s (%s engine) ==\n%s\n", nanosim.FormatValue(a.TStop, 3), cfg.engine, stats)
			lastWaves = waves
			if cfg.plot {
				if err := waves.Plot(os.Stdout, cfg.width, cfg.height, presentNames(waves, deck.Prints)...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "em":
			res, err := nanosim.Stochastic(deck.Circuit, nanosim.NoiseOptions{
				TStop: a.TStop, Steps: a.Steps, Seed: a.Seed})
			if err != nil {
				return fmt.Errorf(".em: %w", err)
			}
			fmt.Printf("== .em to %s (%d steps, %d noise sources, seed %d) ==\n",
				nanosim.FormatValue(a.TStop, 3), a.Steps, res.NoiseSources, a.Seed)
			lastWaves = res.Waves
			if cfg.plot {
				if err := res.Waves.Plot(os.Stdout, cfg.width, cfg.height, presentNames(res.Waves, deck.Prints)...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "settran":
			res, err := nanosim.SETTransient(deck.Circuit, nanosim.SETOptions{
				TStep: a.TStep, TStop: a.TStop, Temp: a.Temp, Seed: a.Seed})
			if err != nil {
				return fmt.Errorf(".set tran: %w", err)
			}
			fmt.Printf("== .set tran to %s (T=%gK, seed %d): %d tunneling events, %d env solves ==\n",
				nanosim.FormatValue(a.TStop, 3), res.Temp, a.Seed, res.Events, res.EnvSolves)
			lastWaves = res.Waves
			if cfg.plot {
				if err := res.Waves.Plot(os.Stdout, cfg.width, cfg.height, presentNames(res.Waves, deck.Prints)...); err != nil {
					return err
				}
			}
			fmt.Println()
		case "setmap":
			res, err := nanosim.SETMap(deck.Circuit, nanosim.SETMapOptions{
				Gate: a.Src, GFrom: a.From, GTo: a.To, GPoints: a.Points,
				Drain: a.Src2, DFrom: a.From2, DTo: a.To2, DPoints: a.Points2,
				Temp: a.Temp, Method: a.Method, Window: a.Window, Seed: a.Seed,
				Workers: threads})
			if err != nil {
				return fmt.Errorf(".set map: %w", err)
			}
			fmt.Printf("== .set map %s %g -> %g (%d points) x %s %g -> %g (%d points), %s method, T=%gK ==\n",
				a.Src, a.From, a.To, a.Points, a.Src2, a.From2, a.To2, a.Points2, res.Method, res.Temp)
			if period, err := res.GatePeriod(len(res.Drain) - 1); err == nil {
				fmt.Printf("  Coulomb oscillation period: %s (e/Cgate for a clean SET)\n",
					nanosim.FormatValue(period, 4))
			}
			lastWaves = res.Waves
			if cfg.plot {
				if err := res.Waves.Plot(os.Stdout, cfg.width, cfg.height); err != nil {
					return err
				}
			}
			fmt.Println()
		}
	}
	if cfg.csvPath != "" && lastWaves != nil {
		if err := writeCSV(cfg.csvPath, lastWaves); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, waves *nanosim.WaveSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := waves.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// partitionOpts merges the deck's .options card with the CLI flags into
// the torn-block engine configuration (nil = monolithic engine). The
// flag gets the same validation as the card, and asking for a threshold
// without enabling the engine is an error rather than a silent no-op.
func partitionOpts(deck *netparse.Deck, cfg config) (*nanosim.PartitionOptions, error) {
	if cfg.gcouple != 0 && (cfg.gcouple <= 0 || cfg.gcouple >= 1) {
		return nil, fmt.Errorf("-gcouple %g out of range (want a ratio in (0,1))", cfg.gcouple)
	}
	enabled := cfg.partition
	popt := nanosim.PartitionOptions{GCouple: cfg.gcouple}
	if o := deck.Options; o != nil {
		enabled = enabled || o.Partition
		popt.NoDormancy = o.NoDormancy
		if popt.GCouple == 0 {
			popt.GCouple = o.GCouple
		}
	}
	if !enabled {
		if cfg.gcouple != 0 {
			return nil, fmt.Errorf("-gcouple needs -partition (or a '.options partition' card in the deck)")
		}
		return nil, nil
	}
	return &popt, nil
}

// threadsOf merges the deck's '.options threads=' with the -j flag (the
// flag wins). Thread counts only change wall-clock time, never results:
// every engine's parallel path is bit-identical at any worker count.
func threadsOf(deck *netparse.Deck, cfg config) (int, error) {
	if cfg.threads < 0 {
		return 0, fmt.Errorf("-j %d out of range (want an integer >= 0)", cfg.threads)
	}
	if cfg.threads > 0 {
		return cfg.threads, nil
	}
	if o := deck.Options; o != nil {
		return o.Threads, nil
	}
	return 0, nil
}

// batchJob builds the per-trial analysis from the deck's cards: the .mc
// analysis keyword when given, else the first .tran, else .em, else .op.
func batchJob(deck *netparse.Deck, popt *nanosim.PartitionOptions, threads int) (nanosim.VaryJob, error) {
	kind := ""
	if deck.MC != nil {
		kind = deck.MC.Analysis
	}
	var tran, em, set *netparse.Analysis
	for i := range deck.Analyses {
		a := &deck.Analyses[i]
		switch {
		case a.Kind == "tran" && tran == nil:
			tran = a
		case a.Kind == "em" && em == nil:
			em = a
		case a.Kind == "settran" && set == nil:
			set = a
		}
	}
	if kind == "" {
		switch {
		case tran != nil:
			kind = "tran"
		case em != nil:
			kind = "em"
		case set != nil:
			kind = "set"
		default:
			kind = "op"
		}
	}
	job := nanosim.VaryJob{Analysis: kind}
	switch kind {
	case "tran":
		if tran == nil {
			return job, fmt.Errorf(".mc tran needs a .tran card")
		}
		job.Tran = nanosim.TranOptions{TStop: tran.TStop, HInit: tran.TStep, RecordCurrents: true, Partition: popt, Workers: threads}
	case "em":
		if em == nil {
			return job, fmt.Errorf(".mc em needs a .em card")
		}
		job.EM = nanosim.NoiseOptions{TStop: em.TStop, Steps: em.Steps, Seed: em.Seed}
	case "set":
		if set == nil {
			return job, fmt.Errorf(".mc set needs a '.set tran' card")
		}
		job.SET = nanosim.SETOptions{TStep: set.TStep, TStop: set.TStop, Temp: set.Temp, Seed: set.Seed}
	}
	return job, nil
}

// printSignals filters the .print list to the batch's measurable series;
// empty means every recorded signal.
func printSignals(deck *netparse.Deck) []string {
	return append([]string(nil), deck.Prints...)
}

// runMC executes the deck's Monte Carlo cards.
func runMC(deck *netparse.Deck, cfg config, popt *nanosim.PartitionOptions, threads int) error {
	if len(deck.Varies) == 0 {
		return fmt.Errorf("-mc/.mc needs at least one .vary card")
	}
	job, err := batchJob(deck, popt, threads)
	if err != nil {
		return err
	}
	opt := nanosim.VaryOptions{Job: job, Signals: printSignals(deck), Workers: cfg.workers}
	if deck.MC != nil {
		opt.Trials = deck.MC.Trials
		opt.Seed = deck.MC.Seed
		if opt.Workers == 0 {
			opt.Workers = deck.MC.Workers
		}
	}
	if cfg.mc > 0 {
		opt.Trials = cfg.mc
	}
	if cfg.seedSet {
		opt.Seed = cfg.seed
	}
	for _, v := range deck.Varies {
		dist, err := nanosim.ParseVaryDist(v.Dist)
		if err != nil {
			return fmt.Errorf("netlist line %d: %w", v.Line, err)
		}
		opt.Specs = append(opt.Specs, nanosim.VarySpec{
			Elem: v.Elem, Param: v.Param, Dist: dist,
			Sigma: v.Sigma, Rel: v.Rel, Lot: v.Lot,
		})
	}
	for _, l := range deck.Limits {
		opt.Limits = append(opt.Limits, nanosim.VaryLimit{Signal: l.Signal, Stat: l.Stat, Lo: l.Lo, Hi: l.Hi})
	}

	res, err := nanosim.Vary(deck.Circuit, opt)
	if err != nil {
		return fmt.Errorf(".mc: %w", err)
	}
	fmt.Printf("== .mc %d trials (%s job, seed %d) ==\n", res.Trials, job.Analysis, opt.Seed)
	for _, sp := range opt.Specs {
		fmt.Printf("  vary %s\n", sp)
	}
	if res.Failed > 0 {
		fmt.Printf("  %d trials FAILED; first: %v\n", res.Failed, res.TrialErrors[0])
	}
	env := nanosim.NewWaveSet()
	for _, sg := range res.Signals {
		nom := res.Nominal.Get(sg.Name)
		q50, _ := sg.Quantile(0.5)
		qlo, _ := sg.Quantile(0.05)
		qhi, _ := sg.Quantile(0.95)
		fmt.Printf("\n  %s final: nominal %s | median %s [q05 %s, q95 %s]\n",
			sg.Name, nanosim.FormatValue(nom.Final(), 4), nanosim.FormatValue(q50, 4),
			nanosim.FormatValue(qlo, 4), nanosim.FormatValue(qhi, 4))
		if sg.FinalHist != nil {
			fmt.Print(indent(sg.FinalHist.String(), "  "))
		}
		for _, s := range []*nanosim.Series{sg.Mean, sg.QLo, sg.QHi} {
			if s != nil {
				if err := env.Add(s); err != nil {
					return err
				}
			}
		}
	}
	if len(opt.Limits) > 0 {
		for _, l := range opt.Limits {
			fmt.Printf("  limit %s\n", l)
		}
		fmt.Printf("  yield: %.1f%% +/- %.1f%% (%d/%d trials pass)\n",
			100*res.Yield, 100*res.YieldSE, res.Passed, res.Trials)
	}
	if cfg.plot && env.Len() > 0 {
		fmt.Println("\n  envelope (mean with quantile band):")
		if err := env.Plot(os.Stdout, cfg.width, cfg.height); err != nil {
			return err
		}
	}
	if cfg.csvPath != "" && env.Len() > 0 {
		if err := writeCSV(cfg.csvPath, env); err != nil {
			return err
		}
	}
	fmt.Printf("\n  solver reuse: %d numeric refactors, %d full factorizations\n",
		res.Solve.NumericRefactor, res.Solve.FullFactor)
	// Failed trials were reported above; they must also fail the exit
	// status, or batch drivers (CI, scripts) read a broken batch as
	// success.
	if res.Failed > 0 {
		return fmt.Errorf(".mc: %d of %d trials failed (first: %v)", res.Failed, res.Trials, res.TrialErrors[0])
	}
	return nil
}

// runStep executes the deck's .step sweep.
func runStep(deck *netparse.Deck, cfg config, popt *nanosim.PartitionOptions, threads int) error {
	if len(deck.Steps) == 0 {
		return fmt.Errorf("-step needs at least one .step card")
	}
	job, err := batchJob(deck, popt, threads)
	if err != nil {
		return err
	}
	opt := nanosim.ParamSweepOptions{Job: job, Signals: printSignals(deck), Workers: cfg.workers}
	for _, s := range deck.Steps {
		opt.Axes = append(opt.Axes, nanosim.ParamSweepAxis{
			Elem: s.Elem, Param: s.Param, From: s.From, To: s.To, Points: s.Points, Log: s.Log,
		})
	}
	res, err := nanosim.ParamSweep(deck.Circuit, opt)
	if err != nil {
		return fmt.Errorf(".step: %w", err)
	}
	fmt.Printf("== .step sweep: %d points (%s job) ==\n", res.Runs(), job.Analysis)
	header := make([]string, 0, len(res.Axes)+len(res.Signals))
	for _, a := range res.Axes {
		name := a.Elem
		if a.Param != "" {
			name += "(" + a.Param + ")"
		}
		header = append(header, name)
	}
	// Sort a copy: res.Signals documents the selection order.
	signals := append([]string(nil), res.Signals...)
	sort.Strings(signals)
	for _, s := range signals {
		header = append(header, "final "+s)
	}
	fmt.Printf("  %s\n", strings.Join(header, "\t"))
	for r := 0; r < res.Runs(); r++ {
		row := make([]string, 0, len(header))
		for _, v := range res.Values[r] {
			row = append(row, nanosim.FormatValue(v, 4))
		}
		for _, s := range signals {
			v := res.Final[s][r]
			if math.IsNaN(v) {
				row = append(row, "FAILED")
			} else {
				row = append(row, nanosim.FormatValue(v, 4))
			}
		}
		fmt.Printf("  %s\n", strings.Join(row, "\t"))
	}
	fmt.Println()
	// As with .mc: failed grid points fail the exit status.
	if res.Failed > 0 {
		return fmt.Errorf(".step: %d of %d points failed (first: %v)", res.Failed, res.Runs(), res.TrialErrors[0])
	}
	return nil
}

// runTransient dispatches on the engine flag.
func runTransient(ckt *nanosim.Circuit, engine string, a netparse.Analysis, popt *nanosim.PartitionOptions, threads int) (*nanosim.WaveSet, string, error) {
	switch engine {
	case "swec", "":
		res, err := nanosim.Transient(ckt, nanosim.TranOptions{
			TStop: a.TStop, HInit: a.TStep, RecordCurrents: true, Partition: popt, Workers: threads})
		if err != nil {
			return nil, "", err
		}
		desc := fmt.Sprintf("steps=%d rejected=%d solves=%d (no Newton iterations)",
			res.Stats.Steps, res.Stats.Rejected, res.Stats.Solves)
		if res.Stats.Blocks > 0 {
			desc += fmt.Sprintf("\npartition: %d blocks, %d tears, %d block-solves, %d dormant block-steps skipped",
				res.Stats.Blocks, res.Stats.Tears, res.Stats.BlockSolves, res.Stats.BlockSkips)
		}
		return res.Waves, desc, nil
	case "nr", "mla", "pwl":
		opt := nanosim.BaselineOptions{TStop: a.TStop, HInit: a.TStep, RecordCurrents: true}
		var res *nanosim.BaselineResult
		var err error
		switch engine {
		case "nr":
			res, err = nanosim.TransientNR(ckt, opt)
		case "mla":
			res, err = nanosim.TransientMLA(ckt, opt)
		default:
			res, err = nanosim.TransientPWL(ckt, opt)
		}
		if err != nil {
			return nil, "", err
		}
		return res.Waves, fmt.Sprintf("steps=%d rejected=%d NR-iters=%d unconverged=%d",
			res.Stats.Steps, res.Stats.Rejected, res.Stats.NRIters, res.Stats.NonConverged), nil
	default:
		return nil, "", fmt.Errorf("unknown engine %q (want swec, nr, mla or pwl)", engine)
	}
}

// presentNames filters a .print list to the series an analysis actually
// produced: one deck-wide list legitimately mixes time-domain names
// ("v(out)") with frequency-domain ones ("vdb(out)"), and each plot
// should show its own subset instead of erroring on the other
// analysis's names. An empty result means "no filter" (Plot shows all).
func presentNames(set *nanosim.WaveSet, prints []string) []string {
	var out []string
	for _, n := range prints {
		if set.Get(n) != nil {
			out = append(out, n)
		}
	}
	return out
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
