package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDeck = `* CLI test deck
V1 in 0 PULSE(0.3 1.1 20n 1n 1n 100n)
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.op
.dc V1 0 1.2 41 N1
.tran 0.5n 80n
.em 1n 100 SEED=7
.end
`

// testCfg fills the config defaults the flag package would provide.
func testCfg(cfg config) config {
	if cfg.engine == "" {
		cfg.engine = "swec"
	}
	if cfg.width == 0 {
		cfg.width = 60
	}
	if cfg.height == 0 {
		cfg.height = 10
	}
	return cfg
}

func writeDeck(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "deck.sp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAnalyses(t *testing.T) {
	path := writeDeck(t, testDeck)
	csv := filepath.Join(filepath.Dir(path), "out.csv")
	if err := run(path, testCfg(config{csvPath: csv})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,") {
		t.Errorf("CSV header wrong: %q", string(data[:20]))
	}
}

func TestRunEngines(t *testing.T) {
	path := writeDeck(t, testDeck)
	for _, engine := range []string{"swec", "nr", "mla", "pwl"} {
		if err := run(path, testCfg(config{engine: engine})); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
	if err := run(path, testCfg(config{engine: "bogus"})); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/deck.sp", testCfg(config{})); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeDeck(t, "title only, no elements\n.end\n")
	if err := run(bad, testCfg(config{})); err == nil {
		t.Error("empty circuit accepted")
	}
	noAnalysis := writeDeck(t, "t\nV1 a 0 1\nR1 a 0 1k\n.end\n")
	if err := run(noAnalysis, testCfg(config{})); err == nil {
		t.Error("deck without analyses accepted")
	}
}

func TestRunWithPlots(t *testing.T) {
	// Plot path writes to stdout; just confirm it does not error.
	path := writeDeck(t, testDeck)
	if err := run(path, testCfg(config{plot: true, height: 8})); err != nil {
		t.Fatal(err)
	}
}

func TestRunRepositoryDecks(t *testing.T) {
	// The shipped demo decks must stay runnable.
	for _, deck := range []string{
		"../../testdata/rtd_divider.sp",
		"../../testdata/fet_rtd_inverter.sp",
		"../../testdata/noisy_rc.sp",
		"../../testdata/ac_rc_filter.sp",
	} {
		if err := run(deck, testCfg(config{height: 8})); err != nil {
			t.Errorf("%s: %v", deck, err)
		}
	}
}

func TestRunRepositoryBatchDecks(t *testing.T) {
	// The .mc and .step demo decks run in batch mode; trials trimmed
	// via the -mc override to keep the test quick.
	if err := run("../../testdata/mc_rtd_inverter.sp", testCfg(config{mc: 16, height: 8})); err != nil {
		t.Errorf("mc deck: %v", err)
	}
	if err := run("../../testdata/step_rtd_divider.sp", testCfg(config{height: 8})); err != nil {
		t.Errorf("step deck: %v", err)
	}
}

const mcDeck = `* CLI Monte Carlo deck
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.tran 0.5n 10n
.mc 8 SEED=3
.vary N1(A) DEV=5%
.limit v(d) final 0 1
.print v(d)
.end
`

func TestRunMonteCarloCSV(t *testing.T) {
	path := writeDeck(t, mcDeck)
	csv := filepath.Join(filepath.Dir(path), "env.csv")
	if err := run(path, testCfg(config{csvPath: csv})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "v(d)-mean") {
		t.Errorf("envelope CSV missing mean column: %q", string(data[:60]))
	}
}

func TestRunMCWithoutVaryCards(t *testing.T) {
	path := writeDeck(t, testDeck)
	if err := run(path, testCfg(config{mc: 4})); err == nil {
		t.Error("-mc without .vary cards accepted")
	}
}

func TestRunStepFlagWithoutCards(t *testing.T) {
	path := writeDeck(t, testDeck)
	if err := run(path, testCfg(config{step: true})); err == nil {
		t.Error("-step without .step cards accepted")
	}
}
