package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDeck = `* CLI test deck
V1 in 0 PULSE(0.3 1.1 20n 1n 1n 100n)
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.op
.dc V1 0 1.2 41 N1
.tran 0.5n 80n
.em 1n 100 SEED=7
.end
`

func writeDeck(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "deck.sp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAnalyses(t *testing.T) {
	path := writeDeck(t, testDeck)
	csv := filepath.Join(filepath.Dir(path), "out.csv")
	if err := run(path, "swec", csv, false, 60, 10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,") {
		t.Errorf("CSV header wrong: %q", string(data[:20]))
	}
}

func TestRunEngines(t *testing.T) {
	path := writeDeck(t, testDeck)
	for _, engine := range []string{"swec", "nr", "mla", "pwl"} {
		if err := run(path, engine, "", false, 60, 10); err != nil {
			t.Errorf("engine %s: %v", engine, err)
		}
	}
	if err := run(path, "bogus", "", false, 60, 10); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/deck.sp", "swec", "", false, 60, 10); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeDeck(t, "title only, no elements\n.end\n")
	if err := run(bad, "swec", "", false, 60, 10); err == nil {
		t.Error("empty circuit accepted")
	}
	noAnalysis := writeDeck(t, "t\nV1 a 0 1\nR1 a 0 1k\n.end\n")
	if err := run(noAnalysis, "swec", "", false, 60, 10); err == nil {
		t.Error("deck without analyses accepted")
	}
}

func TestRunWithPlots(t *testing.T) {
	// Plot path writes to stdout; just confirm it does not error.
	path := writeDeck(t, testDeck)
	if err := run(path, "swec", "", true, 60, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunRepositoryDecks(t *testing.T) {
	// The shipped demo decks must stay runnable.
	for _, deck := range []string{
		"../../testdata/rtd_divider.sp",
		"../../testdata/fet_rtd_inverter.sp",
		"../../testdata/noisy_rc.sp",
	} {
		if err := run(deck, "swec", "", false, 60, 8); err != nil {
			t.Errorf("%s: %v", deck, err)
		}
	}
}
