package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nanosim"
	"nanosim/internal/netparse"
	"nanosim/internal/trace"
)

// goldenSchema versions the reference-waveform files.
const goldenSchema = "nanosim/golden/v1"

// goldenPoints is the fixed resampling grid: comparisons are
// step-sequence independent because both sides interpolate onto it.
const goldenPoints = 201

// GoldenSignal is one recorded reference waveform.
type GoldenSignal struct {
	T []float64 `json:"t"`
	V []float64 `json:"v"`
}

// GoldenAnalysis is one deck analysis card's recorded output.
type GoldenAnalysis struct {
	Kind    string                  `json:"kind"`
	Signals map[string]GoldenSignal `json:"signals"`
}

// GoldenFile is the committed reference record of one deck.
type GoldenFile struct {
	Schema   string           `json:"schema"`
	Deck     string           `json:"deck"`
	Analyses []GoldenAnalysis `json:"analyses"`
}

// runGolden implements `nanobench -golden record|check`: the golden-deck
// regression gate. record writes reference waveforms for every
// deterministic analysis of every deck under deckDir; check re-runs them
// and fails on per-wave drift beyond tol (relative to each golden
// signal's value range), so engine refactors cannot silently change
// numerics.
func runGolden(mode, deckDir, goldenDir string, tol float64) error {
	switch mode {
	case "record", "check":
	default:
		return fmt.Errorf("-golden %q: want record or check", mode)
	}
	if tol <= 0 {
		return fmt.Errorf("-golden-tol %g: want > 0", tol)
	}
	decks, err := filepath.Glob(filepath.Join(deckDir, "*.sp"))
	if err != nil {
		return err
	}
	if len(decks) == 0 {
		return fmt.Errorf("no decks under %s", deckDir)
	}
	sort.Strings(decks)
	failed := 0
	for _, deck := range decks {
		g, err := goldenRun(deck)
		if err != nil {
			return fmt.Errorf("%s: %w", deck, err)
		}
		path := filepath.Join(goldenDir, strings.TrimSuffix(filepath.Base(deck), ".sp")+".golden.json")
		if mode == "record" {
			if err := writeGolden(path, g); err != nil {
				return err
			}
			fmt.Printf("golden: recorded %s (%d analyses)\n", path, len(g.Analyses))
			continue
		}
		ref, err := readGolden(path)
		if err != nil {
			return fmt.Errorf("%s (run `nanobench -golden record` after intentional changes): %w", deck, err)
		}
		if n := compareGolden(deck, ref, g, tol); n > 0 {
			failed += n
		}
	}
	if failed > 0 {
		return fmt.Errorf("golden check: %d signal(s) drifted beyond tol=%g (rerun `nanobench -golden record` only if the change is intentional)", failed, tol)
	}
	if mode == "check" {
		fmt.Printf("golden check: %d decks match within tol=%g\n", len(decks), tol)
	}
	return nil
}

// goldenRun executes every deterministic analysis card of a deck and
// resamples the outputs onto the fixed grid. Batch cards (.mc/.step) are
// skipped: their aggregates are covered by the vary smoke, and the
// deck's plain analysis cards are what the engines' numerics show up in.
func goldenRun(path string) (*GoldenFile, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	deck, err := netparse.Parse(string(src))
	if err != nil {
		return nil, err
	}
	var popt *nanosim.PartitionOptions
	if o := deck.Options; o != nil && o.Partition {
		popt = &nanosim.PartitionOptions{GCouple: o.GCouple, NoDormancy: o.NoDormancy}
	}
	g := &GoldenFile{Schema: goldenSchema, Deck: filepath.Base(path)}
	for _, a := range deck.Analyses {
		var waves *nanosim.WaveSet
		switch a.Kind {
		case "op":
			res, err := nanosim.OperatingPoint(deck.Circuit, nanosim.DCOptions{})
			if err != nil {
				return nil, fmt.Errorf(".op: %w", err)
			}
			waves = trace.OPWaves(deck.Circuit, res.X)
		case "dc":
			res, err := nanosim.Sweep(deck.Circuit, a.Src, a.From, a.To, a.Points, a.Device,
				nanosim.DCOptions{RefineIters: 3})
			if err != nil {
				return nil, fmt.Errorf(".dc: %w", err)
			}
			waves = res.Waves
		case "ac":
			res, err := nanosim.AC(deck.Circuit, nanosim.ACOptions{
				Grid: a.ACGrid, Points: a.Points, FStart: a.From, FStop: a.To})
			if err != nil {
				return nil, fmt.Errorf(".ac: %w", err)
			}
			waves = res.Waves
		case "tran":
			res, err := nanosim.Transient(deck.Circuit, nanosim.TranOptions{
				TStop: a.TStop, HInit: a.TStep, RecordCurrents: true, Partition: popt})
			if err != nil {
				return nil, fmt.Errorf(".tran: %w", err)
			}
			waves = res.Waves
		case "em":
			res, err := nanosim.Stochastic(deck.Circuit, nanosim.NoiseOptions{
				TStop: a.TStop, Steps: a.Steps, Seed: a.Seed})
			if err != nil {
				return nil, fmt.Errorf(".em: %w", err)
			}
			waves = res.Waves
		case "settran":
			// Seeded kMC is bit-identical run to run, so it goldens like
			// any deterministic transient.
			res, err := nanosim.SETTransient(deck.Circuit, nanosim.SETOptions{
				TStep: a.TStep, TStop: a.TStop, Temp: a.Temp, Seed: a.Seed})
			if err != nil {
				return nil, fmt.Errorf(".set tran: %w", err)
			}
			waves = res.Waves
		case "setmap":
			res, err := nanosim.SETMap(deck.Circuit, nanosim.SETMapOptions{
				Gate: a.Src, GFrom: a.From, GTo: a.To, GPoints: a.Points,
				Drain: a.Src2, DFrom: a.From2, DTo: a.To2, DPoints: a.Points2,
				Temp: a.Temp, Method: a.Method, Window: a.Window, Seed: a.Seed})
			if err != nil {
				return nil, fmt.Errorf(".set map: %w", err)
			}
			waves = res.Waves
		default:
			continue
		}
		ga := GoldenAnalysis{Kind: a.Kind, Signals: map[string]GoldenSignal{}}
		for _, name := range waves.Names() {
			s := waves.Get(name)
			if s.Len() >= 2 {
				rs, err := s.Resample(goldenPoints)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", a.Kind, name, err)
				}
				s = rs
			}
			ga.Signals[name] = GoldenSignal{T: s.T, V: s.V}
		}
		g.Analyses = append(g.Analyses, ga)
	}
	if len(g.Analyses) == 0 {
		return nil, fmt.Errorf("deck has no deterministic analysis cards to record")
	}
	return g, nil
}

// compareGolden reports the number of drifted signals, printing each.
func compareGolden(deck string, ref, got *GoldenFile, tol float64) int {
	if len(ref.Analyses) != len(got.Analyses) {
		fmt.Printf("golden DRIFT %s: %d analyses recorded, %d produced\n", deck, len(ref.Analyses), len(got.Analyses))
		return 1
	}
	failed := 0
	for i, ra := range ref.Analyses {
		ga := got.Analyses[i]
		if ra.Kind != ga.Kind {
			fmt.Printf("golden DRIFT %s: analysis %d is %s, recorded %s\n", deck, i, ga.Kind, ra.Kind)
			failed++
			continue
		}
		names := make([]string, 0, len(ra.Signals))
		for name := range ra.Signals {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rs := ra.Signals[name]
			gs, ok := ga.Signals[name]
			if !ok {
				fmt.Printf("golden DRIFT %s [%s]: signal %s missing\n", deck, ra.Kind, name)
				failed++
				continue
			}
			if dev, at, ok := signalDeviation(rs, gs, tol); !ok {
				fmt.Printf("golden DRIFT %s [%s] %s: deviation %.3g at t=%g exceeds tol\n",
					deck, ra.Kind, name, dev, at)
				failed++
			}
		}
		for name := range ga.Signals {
			if _, ok := ra.Signals[name]; !ok {
				fmt.Printf("golden DRIFT %s [%s]: new signal %s not in the record\n", deck, ra.Kind, name)
				failed++
			}
		}
	}
	return failed
}

// signalDeviation compares one signal against its record with a
// tolerance relative to the recorded value range (floored so flat
// near-zero signals don't demand absolute exactness).
func signalDeviation(ref, got GoldenSignal, tol float64) (worst, at float64, ok bool) {
	if len(ref.V) != len(got.V) {
		return math.Inf(1), 0, false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ref.V {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span < 1e-12 {
		span = 1e-12
	}
	limit := tol * span
	ok = true
	for i := range ref.V {
		if d := math.Abs(ref.V[i] - got.V[i]); d > worst {
			worst, at = d, ref.T[i]
		}
	}
	if worst > limit {
		ok = false
	}
	return worst, at, ok
}

// writeGolden marshals g with stable formatting.
func writeGolden(path string, g *GoldenFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readGolden loads and validates a reference record.
func readGolden(path string) (*GoldenFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g GoldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if g.Schema != goldenSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, g.Schema, goldenSchema)
	}
	return &g, nil
}
