package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenCheckMatchesCommittedReferences re-runs every testdata deck
// against the committed reference waveforms — the in-test twin of the CI
// golden gate, so `go test ./...` also catches silent numeric drift.
func TestGoldenCheckMatchesCommittedReferences(t *testing.T) {
	if err := runGolden("check", "../../testdata", "../../testdata/golden", 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenCheckDetectsDrift(t *testing.T) {
	// Record a deck, then check it against a perturbed circuit: the
	// tampered run must be flagged.
	dir := t.TempDir()
	deckDir := filepath.Join(dir, "decks")
	goldDir := filepath.Join(dir, "golden")
	if err := os.MkdirAll(deckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	deck := "* drift probe\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1p\n.tran 0.1n 10n\n.end\n"
	path := filepath.Join(deckDir, "probe.sp")
	if err := os.WriteFile(path, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runGolden("record", deckDir, goldDir, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := runGolden("check", deckDir, goldDir, 1e-6); err != nil {
		t.Fatalf("freshly recorded deck drifted: %v", err)
	}
	// A 2% resistor change is way beyond tol=1e-6 of the signal range.
	tampered := strings.Replace(deck, "R1 in out 1k", "R1 in out 1.02k", 1)
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runGolden("check", deckDir, goldDir, 1e-6)
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("tampered deck passed the golden check: %v", err)
	}
	// Missing golden file: a new deck without a record must fail check.
	extra := filepath.Join(deckDir, "new.sp")
	if err := os.WriteFile(extra, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runGolden("check", deckDir, goldDir, 1e-6); err == nil {
		t.Fatal("deck without a golden record passed the check")
	}
}
