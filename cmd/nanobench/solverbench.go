package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"nanosim/internal/core"
	"nanosim/internal/device"
	"nanosim/internal/exp"
	"nanosim/internal/hier"
	"nanosim/internal/linsolve"
	"nanosim/internal/netparse"
	"nanosim/internal/part"
	"nanosim/internal/spmat"
	"nanosim/internal/vary"
	"nanosim/internal/wave"
)

// SolverBenchEntry is one backend × size measurement of the per-step
// hot path (Reset → restamp → Solve with pattern-stable values).
type SolverBenchEntry struct {
	Backend     string  `json:"backend"`
	N           int     `json:"n"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_step"`
	BytesPerOp  int64   `json:"bytes_per_step"`
}

// VarySmoke records the process-variation batch smoke: a 32-trial
// Monte Carlo on the FET-RTD inverter, asserting same-seed determinism
// across worker counts and reporting the per-trial cost with the
// per-worker solver-state reuse engaged.
type VarySmoke struct {
	Trials          int     `json:"trials"`
	Workers         int     `json:"workers"`
	Deterministic   bool    `json:"deterministic_vs_workers_1"`
	NsPerTrial      float64 `json:"ns_per_trial"`
	NumericRefactor int     `json:"numeric_refactors"`
	FullFactor      int     `json:"full_factorizations"`
	Yield           float64 `json:"yield"`
}

// PartitionBench records the torn-block engine against the monolithic
// one on the mostly-quiescent RTD pipeline (exp.RTDPipeline): the
// latency-exploitation speedup the partition exists for, plus the
// accuracy cost, tracked PR to PR.
type PartitionBench struct {
	Stages        int     `json:"stages"`
	Nodes         int     `json:"nodes"`
	Blocks        int     `json:"blocks"`
	Tears         int     `json:"tears"`
	MonolithicMs  float64 `json:"monolithic_ms"`
	PartitionedMs float64 `json:"partitioned_ms"`
	Speedup       float64 `json:"speedup"`
	BlockSolves   int64   `json:"block_solves"`
	BlockSkips    int64   `json:"dormant_block_steps_skipped"`
	SkipFraction  float64 `json:"dormant_skip_fraction"`
	MaxAbsDevV    float64 `json:"max_abs_deviation_v"`
}

// ParallelBench records the multi-core scaling of the partitioned
// engine: the RTD pipeline with dormancy off (every block solves every
// step, so the curve measures the worker pool and nothing else) stepped
// at each worker count, with the waveforms asserted bit-identical
// between every run. Wall-times only mean something next to the machine
// that produced them, so GOMAXPROCS and NumCPU ride along.
type ParallelBench struct {
	Stages       int       `json:"stages"`
	Blocks       int       `json:"blocks"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	Workers      []int     `json:"workers"`
	Ms           []float64 `json:"ms"`
	Speedup      []float64 `json:"speedup_vs_serial"`
	BitIdentical bool      `json:"bit_identical"`
}

// HierCompileBench records the hierarchical deck-compile path against
// flatten-and-compile on the 4096-stage subcircuit pipeline: the same
// deck and assertion the internal/hier acceptance test runs, with the
// wall-times, the masters-vs-flattened compiled dimensions, and the
// bit-identity cross-check recorded PR to PR.
type HierCompileBench struct {
	Stages int `json:"stages"`
	// Nodes is the flattened deck's node count (peak instantiated size).
	Nodes int `json:"nodes"`
	// Blocks and Groups compare partition blocks against the congruence
	// classes the hierarchical compiler actually compiled.
	Blocks int `json:"blocks"`
	Groups int `json:"groups"`
	// MaterializedDim vs TotalDim: compiled system rows paid (one donor
	// per master class) vs rows the flat path compiles.
	MaterializedDim int     `json:"materialized_dim"`
	TotalDim        int     `json:"flattened_dim"`
	SharingFactor   float64 `json:"sharing_factor"`
	FlattenMs       float64 `json:"flatten_compile_ms"`
	HierMs          float64 `json:"hier_compile_ms"`
	Speedup         float64 `json:"speedup"`
	BitIdentical    bool    `json:"bit_identical"`
}

// SolverBenchReport is the machine-readable solver perf record emitted
// as BENCH_solver.json so the hot-path trajectory is tracked PR to PR.
type SolverBenchReport struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Timestamp  string             `json:"timestamp"`
	Workload   string             `json:"workload"`
	Crossover  int                `json:"auto_crossover"`
	Results    []SolverBenchEntry `json:"results"`
	SpeedupVs  string             `json:"speedup_vs"`
	MinSpeedup float64            `json:"min_speedup_n200_plus"`
	Vary       *VarySmoke         `json:"vary_smoke,omitempty"`
	Partition  *PartitionBench    `json:"partition_bench,omitempty"`
	Parallel   *ParallelBench     `json:"parallel_bench,omitempty"`
	Hier       *HierCompileBench  `json:"hier_compile,omitempty"`
}

// runSolverBench measures the per-step solver cost across sizes and
// backends and writes the JSON report to path.
func runSolverBench(path string) error {
	sizes := []int{16, 32, 64, 200, 512}
	rep := SolverBenchReport{
		Schema:     "nanosim/bench-solver/v1",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Workload:   "tridiagonal ladder + source incidence; Reset/restamp/Solve per step",
		Crossover:  linsolve.AutoCrossover,
		SpeedupVs:  "sparse-naive (map triplet + full min-degree factorization per step, the pre-PR hot path)",
	}

	measure := func(fn func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
	}

	naive := map[int]float64{}
	compiled := map[int]float64{}
	for _, n := range sizes {
		rhs := make([]float64, n)
		rhs[0] = 1
		out := make([]float64, n)

		{
			s := linsolve.NewDense(n, nil)
			r := measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
					if err := s.Solve(rhs, out); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.Results = append(rep.Results, entry("dense", n, r))
		}

		s := linsolve.NewSparse(n, nil)
		exp.StampLadderSystem(s, n, 1e-3)
		if err := s.Solve(rhs, out); err != nil {
			return err
		}
		r := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, entry("sparse", n, r))
		compiled[n] = float64(r.NsPerOp())

		t := spmat.NewTriplet(n, n)
		r = measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.Zero()
				exp.StampLadderEntries(t, n, 1e-3+1e-9*float64(i%7))
				f, err := spmat.Factor(t, nil)
				if err != nil {
					b.Fatal(err)
				}
				f.Solve(rhs, out, nil)
			}
		})
		rep.Results = append(rep.Results, entry("sparse-naive", n, r))
		naive[n] = float64(r.NsPerOp())
	}

	rep.MinSpeedup = 0
	for _, n := range sizes {
		if n < 200 || compiled[n] == 0 {
			continue
		}
		sp := naive[n] / compiled[n]
		if rep.MinSpeedup == 0 || sp < rep.MinSpeedup {
			rep.MinSpeedup = sp
		}
	}

	smoke, err := runVarySmoke()
	if err != nil {
		return err
	}
	rep.Vary = smoke

	pb, err := runPartitionBench()
	if err != nil {
		return err
	}
	rep.Partition = pb

	plb, err := runParallelBench()
	if err != nil {
		return err
	}
	rep.Parallel = plb

	hb, err := runHierCompileBench()
	if err != nil {
		return err
	}
	rep.Hier = hb

	for _, e := range rep.Results {
		fmt.Printf("%-14s n=%-4d %12.0f ns/step  %4d allocs/step\n",
			e.Backend, e.N, e.NsPerStep, e.AllocsPerOp)
	}
	fmt.Printf("auto crossover: %d; min speedup vs naive at n>=200: %.1fx\n",
		rep.Crossover, rep.MinSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runVarySmoke runs the 32-trial process-variation batch on the RTD
// chain (sparse backend, so solver-state reuse is visible) and asserts
// same-seed determinism between Workers=1 and all-core runs.
func runVarySmoke() (*VarySmoke, error) {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	batch := func(w int) (*vary.Result, error) {
		return vary.MonteCarlo(exp.RTDChain(16, device.DC(0.8)), vary.Options{
			Trials:  32,
			Seed:    20050307,
			Workers: w,
			Specs:   []vary.Spec{{Elem: "N*", Param: "A", Sigma: 0.05, Rel: true}},
			Job: vary.Job{Analysis: "tran", Tran: core.Options{
				TStop: 10e-9, HInit: 0.25e-9}},
			Signals: []string{"v(n0)"},
			Limits:  []vary.Limit{{Signal: "v(n0)", Stat: "final", Lo: 0, Hi: 1.5}},
		})
	}
	r1, err := batch(1)
	if err != nil {
		return nil, fmt.Errorf("vary smoke (workers=1): %w", err)
	}
	start := time.Now()
	rN, err := batch(workers)
	if err != nil {
		return nil, fmt.Errorf("vary smoke (workers=%d): %w", workers, err)
	}
	elapsed := time.Since(start)
	s1, sN := r1.Signal("v(n0)"), rN.Signal("v(n0)")
	deterministic := r1.Yield == rN.Yield
	for i := range s1.Final {
		if s1.Final[i] != sN.Final[i] || s1.Min[i] != sN.Min[i] || s1.Max[i] != sN.Max[i] {
			deterministic = false
			break
		}
	}
	smoke := &VarySmoke{
		Trials:          rN.Trials,
		Workers:         workers,
		Deterministic:   deterministic,
		NsPerTrial:      float64(elapsed.Nanoseconds()) / float64(rN.Trials),
		NumericRefactor: rN.Solve.NumericRefactor,
		FullFactor:      rN.Solve.FullFactor,
		Yield:           rN.Yield,
	}
	fmt.Printf("vary smoke: %d trials, %.0f ns/trial at %d workers, %d numeric refactors / %d full, deterministic=%v\n",
		smoke.Trials, smoke.NsPerTrial, workers, smoke.NumericRefactor, smoke.FullFactor, deterministic)
	if !deterministic {
		return nil, fmt.Errorf("vary smoke: Workers=1 and Workers=%d batches differ for the same seed", workers)
	}
	return smoke, nil
}

// runPartitionBench times the monolithic and torn-block engines on the
// >= 1k-node mostly-quiescent RTD pipeline and cross-checks their
// waveforms; only the pulsed head of the pipeline (and its immediate
// neighborhood) should ever solve once dormancy engages.
func runPartitionBench() (*PartitionBench, error) {
	const stages, pulsed = 1024, 4
	opt := core.Options{TStop: 20e-9, HInit: 0.1e-9}

	ckt := exp.RTDPipeline(stages, pulsed)
	runtime.GC() // don't bill earlier benchmarks' garbage to either engine
	start := time.Now()
	mono, err := core.Transient(ckt, opt)
	if err != nil {
		return nil, fmt.Errorf("partition bench (monolithic): %w", err)
	}
	monoMs := float64(time.Since(start).Nanoseconds()) / 1e6

	opt.Partition = &part.Options{}
	runtime.GC()
	start = time.Now()
	pr, err := core.Transient(ckt, opt)
	if err != nil {
		return nil, fmt.Errorf("partition bench (partitioned): %w", err)
	}
	partMs := float64(time.Since(start).Nanoseconds()) / 1e6

	// Accuracy cross-check on the pulsed head, the quiet tail and a
	// mid-pipeline stage.
	worst := 0.0
	for _, sig := range []string{"v(n0)", "v(n512)", "v(n1023)"} {
		a, b := mono.Waves.Get(sig), pr.Waves.Get(sig)
		if a == nil || b == nil {
			return nil, fmt.Errorf("partition bench: signal %s missing", sig)
		}
		va, vb, err := wave.CompareOn(a, b, 400)
		if err != nil {
			return nil, err
		}
		for i := range va {
			if d := math.Abs(va[i] - vb[i]); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.03 {
		return nil, fmt.Errorf("partition bench: engines deviate by %.4g V", worst)
	}

	total := pr.Stats.BlockSolves + pr.Stats.BlockSkips
	pb := &PartitionBench{
		Stages:        stages,
		Nodes:         ckt.NumNodes() - 1,
		Blocks:        pr.Stats.Blocks,
		Tears:         pr.Stats.Tears,
		MonolithicMs:  monoMs,
		PartitionedMs: partMs,
		Speedup:       monoMs / partMs,
		BlockSolves:   pr.Stats.BlockSolves,
		BlockSkips:    pr.Stats.BlockSkips,
		SkipFraction:  float64(pr.Stats.BlockSkips) / float64(total),
		// The Finite guard keeps any degenerate measure out of the JSON
		// record (encoding/json rejects non-finite floats).
		MaxAbsDevV: wave.Finite(worst, -1),
	}
	fmt.Printf("partition bench: %d stages (%d nodes) -> %d blocks/%d tears; mono %.0f ms, part %.0f ms (%.1fx), %.0f%% block-steps dormant, max dev %.3g V\n",
		pb.Stages, pb.Nodes, pb.Blocks, pb.Tears, pb.MonolithicMs, pb.PartitionedMs, pb.Speedup, 100*pb.SkipFraction, pb.MaxAbsDevV)
	if pb.Speedup < 2 {
		return nil, fmt.Errorf("partition bench: speedup %.2fx below the 2x acceptance floor", pb.Speedup)
	}
	return pb, nil
}

// runParallelBench steps the RTD pipeline with dormancy disabled at 1,
// 2 and 4 workers, asserting every run answers bit-identical waveforms
// (the tentpole determinism contract) and recording the cores-vs-speedup
// curve. The >= 2x acceptance floor at 4 workers only applies on
// machines with >= 4 CPUs; on smaller runners the curve is recorded but
// flat by construction.
func runParallelBench() (*ParallelBench, error) {
	const stages, pulsed = 256, 8
	workerCounts := []int{1, 2, 4}
	ckt := exp.RTDPipeline(stages, pulsed)

	pb := &ParallelBench{
		Stages:       stages,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workerCounts,
		BitIdentical: true,
	}
	var ref *core.Result
	for _, w := range workerCounts {
		opt := core.Options{
			TStop: 10e-9, HInit: 0.1e-9,
			Partition: &part.Options{NoDormancy: true},
			Workers:   w,
		}
		runtime.GC()
		start := time.Now()
		r, err := core.Transient(ckt, opt)
		if err != nil {
			return nil, fmt.Errorf("parallel bench (workers=%d): %w", w, err)
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		pb.Ms = append(pb.Ms, ms)
		if ref == nil {
			ref = r
			pb.Blocks = r.Stats.Blocks
			pb.Speedup = append(pb.Speedup, 1)
			continue
		}
		pb.Speedup = append(pb.Speedup, pb.Ms[0]/ms)
		if err := identicalWaves(ref.Waves, r.Waves); err != nil {
			pb.BitIdentical = false
			return nil, fmt.Errorf("parallel bench (workers=%d): %w", w, err)
		}
	}
	fmt.Printf("parallel bench: %d stages, %d blocks, dormancy off; workers %v -> ms %v (speedup %v), bit-identical=%v\n",
		pb.Stages, pb.Blocks, pb.Workers, pb.Ms, pb.Speedup, pb.BitIdentical)
	if runtime.NumCPU() >= 4 && pb.Speedup[len(pb.Speedup)-1] < 2 {
		return nil, fmt.Errorf("parallel bench: %.2fx at 4 workers is below the 2x acceptance floor on a %d-CPU machine",
			pb.Speedup[len(pb.Speedup)-1], runtime.NumCPU())
	}
	return pb, nil
}

// runHierCompileBench times hierarchical master-template compilation
// against flatten-and-compile on the 4096-stage subcircuit pipeline
// (exp.HierPipelineDeck — the same deck the internal/hier acceptance
// test asserts >= 10x on) and cross-checks the transient waveforms
// bitwise. The JSON floor here is 5x: looser than the in-test assert so
// a noisy shared runner doesn't flap the bench, while still failing
// loudly if master sharing stops paying for itself.
func runHierCompileBench() (*HierCompileBench, error) {
	const stages, rows, cols = 4096, 10, 10
	deck, err := netparse.Parse(exp.HierPipelineDeck(stages, rows, cols))
	if err != nil {
		return nil, fmt.Errorf("hier bench: parse: %w", err)
	}
	ckt := deck.Circuit
	opt := core.Options{
		TStop: 2e-9, HInit: 0.1e-9,
		Partition: &part.Options{}, Workers: 4,
	}

	// Hierarchical path first, from a collected heap: once the flat
	// compile exists, its thousands of live solvers would bill their GC
	// scan time to hier's clock.
	runtime.GC()
	start := time.Now()
	hierCT, hrep, err := hier.CompileTransient(ckt, opt)
	if err != nil {
		return nil, fmt.Errorf("hier bench (hierarchical): %w", err)
	}
	hierMs := float64(time.Since(start).Nanoseconds()) / 1e6

	runtime.GC()
	start = time.Now()
	flatCT, err := core.CompileTransient(ckt, opt)
	if err != nil {
		return nil, fmt.Errorf("hier bench (flatten): %w", err)
	}
	flatMs := float64(time.Since(start).Nanoseconds()) / 1e6

	flatRes, err := flatCT.Run()
	if err != nil {
		return nil, fmt.Errorf("hier bench (flat run): %w", err)
	}
	hierRes, err := hierCT.Run()
	if err != nil {
		return nil, fmt.Errorf("hier bench (hier run): %w", err)
	}
	if err := identicalWaves(flatRes.Waves, hierRes.Waves); err != nil {
		return nil, fmt.Errorf("hier bench: hier vs flat waveforms: %w", err)
	}

	hb := &HierCompileBench{
		Stages:          stages,
		Nodes:           ckt.NumNodes() - 1,
		Blocks:          hrep.Blocks,
		Groups:          hrep.Groups,
		MaterializedDim: hrep.MaterializedDim,
		TotalDim:        hrep.TotalDim,
		SharingFactor:   hrep.SharingFactor(),
		FlattenMs:       flatMs,
		HierMs:          hierMs,
		Speedup:         flatMs / hierMs,
		BitIdentical:    true,
	}
	fmt.Printf("hier bench: %d stages (%d nodes) -> %d blocks/%d groups; flatten %.0f ms, hier %.0f ms (%.1fx), sharing %.0fx, bit-identical\n",
		hb.Stages, hb.Nodes, hb.Blocks, hb.Groups, hb.FlattenMs, hb.HierMs, hb.Speedup, hb.SharingFactor)
	if hb.Speedup < 5 {
		return nil, fmt.Errorf("hier bench: compile speedup %.2fx below the 5x recording floor", hb.Speedup)
	}
	return hb, nil
}

// identicalWaves demands bitwise-equal waveform sets: same signals, same
// timepoints, same values. Any drift between worker counts is a
// determinism bug, not a tolerance question.
func identicalWaves(a, b *wave.Set) error {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return fmt.Errorf("signal counts differ: %d vs %d", len(an), len(bn))
	}
	for _, name := range an {
		sa, sb := a.Get(name), b.Get(name)
		if sb == nil {
			return fmt.Errorf("signal %s missing from one run", name)
		}
		if len(sa.T) != len(sb.T) {
			return fmt.Errorf("signal %s: %d vs %d samples", name, len(sa.T), len(sb.T))
		}
		for i := range sa.T {
			if sa.T[i] != sb.T[i] || sa.V[i] != sb.V[i] {
				return fmt.Errorf("signal %s diverges at sample %d: (%g, %g) vs (%g, %g)",
					name, i, sa.T[i], sa.V[i], sb.T[i], sb.V[i])
			}
		}
	}
	return nil
}

func entry(backend string, n int, r testing.BenchmarkResult) SolverBenchEntry {
	return SolverBenchEntry{
		Backend:     backend,
		N:           n,
		NsPerStep:   float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
