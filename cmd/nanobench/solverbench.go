package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"nanosim/internal/exp"
	"nanosim/internal/linsolve"
	"nanosim/internal/spmat"
)

// SolverBenchEntry is one backend × size measurement of the per-step
// hot path (Reset → restamp → Solve with pattern-stable values).
type SolverBenchEntry struct {
	Backend     string  `json:"backend"`
	N           int     `json:"n"`
	NsPerStep   float64 `json:"ns_per_step"`
	AllocsPerOp int64   `json:"allocs_per_step"`
	BytesPerOp  int64   `json:"bytes_per_step"`
}

// SolverBenchReport is the machine-readable solver perf record emitted
// as BENCH_solver.json so the hot-path trajectory is tracked PR to PR.
type SolverBenchReport struct {
	Schema     string             `json:"schema"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	Timestamp  string             `json:"timestamp"`
	Workload   string             `json:"workload"`
	Crossover  int                `json:"auto_crossover"`
	Results    []SolverBenchEntry `json:"results"`
	SpeedupVs  string             `json:"speedup_vs"`
	MinSpeedup float64            `json:"min_speedup_n200_plus"`
}

// runSolverBench measures the per-step solver cost across sizes and
// backends and writes the JSON report to path.
func runSolverBench(path string) error {
	sizes := []int{16, 32, 64, 200, 512}
	rep := SolverBenchReport{
		Schema:    "nanosim/bench-solver/v1",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Workload:  "tridiagonal ladder + source incidence; Reset/restamp/Solve per step",
		Crossover: linsolve.AutoCrossover,
		SpeedupVs: "sparse-naive (map triplet + full min-degree factorization per step, the pre-PR hot path)",
	}

	measure := func(fn func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
	}

	naive := map[int]float64{}
	compiled := map[int]float64{}
	for _, n := range sizes {
		rhs := make([]float64, n)
		rhs[0] = 1
		out := make([]float64, n)

		{
			s := linsolve.NewDense(n, nil)
			r := measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
					if err := s.Solve(rhs, out); err != nil {
						b.Fatal(err)
					}
				}
			})
			rep.Results = append(rep.Results, entry("dense", n, r))
		}

		s := linsolve.NewSparse(n, nil)
		exp.StampLadderSystem(s, n, 1e-3)
		if err := s.Solve(rhs, out); err != nil {
			return err
		}
		r := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp.StampLadderSystem(s, n, 1e-3+1e-9*float64(i%7))
				if err := s.Solve(rhs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, entry("sparse", n, r))
		compiled[n] = float64(r.NsPerOp())

		t := spmat.NewTriplet(n, n)
		r = measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t.Zero()
				exp.StampLadderEntries(t, n, 1e-3+1e-9*float64(i%7))
				f, err := spmat.Factor(t, nil)
				if err != nil {
					b.Fatal(err)
				}
				f.Solve(rhs, out, nil)
			}
		})
		rep.Results = append(rep.Results, entry("sparse-naive", n, r))
		naive[n] = float64(r.NsPerOp())
	}

	rep.MinSpeedup = 0
	for _, n := range sizes {
		if n < 200 || compiled[n] == 0 {
			continue
		}
		sp := naive[n] / compiled[n]
		if rep.MinSpeedup == 0 || sp < rep.MinSpeedup {
			rep.MinSpeedup = sp
		}
	}

	for _, e := range rep.Results {
		fmt.Printf("%-14s n=%-4d %12.0f ns/step  %4d allocs/step\n",
			e.Backend, e.N, e.NsPerStep, e.AllocsPerOp)
	}
	fmt.Printf("auto crossover: %d; min speedup vs naive at n>=200: %.1fx\n",
		rep.Crossover, rep.MinSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func entry(backend string, n int, r testing.BenchmarkResult) SolverBenchEntry {
	return SolverBenchEntry{
		Backend:     backend,
		N:           n,
		NsPerStep:   float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
