package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"nanosim/internal/faultpoint"
	"nanosim/internal/serve"
)

// ServeLoadBench records the steady-state scenario: N concurrent
// clients each running a private submit → wait-for-result loop against
// an in-process nanosimd, half tran decks and half Monte Carlo decks,
// all forced fresh so every job does real engine work. Latencies are
// end-to-end as a client sees them (POST accepted through result body
// received), which is the number an operator capacity-plans against.
type ServeLoadBench struct {
	Clients       int `json:"clients"`
	JobsPerClient int `json:"jobs_per_client"`
	Jobs          int `json:"jobs"`
	Errors        int `json:"errors"`

	WallMs           float64 `json:"wall_ms"`
	MsPerJob         float64 `json:"ms_per_job"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MaxMs            float64 `json:"max_ms"`
	ThroughputPerSec float64 `json:"throughput_jobs_per_sec"`

	// Server-side corroboration from /metrics.
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	DeckCompiles   int64   `json:"deck_compiles"`
	WarmCheckouts  int64   `json:"warm_solver_checkouts"`
}

// ServeOverloadBench records the shed-and-drain scenario: a one-worker
// server with a tiny queue, per-client rate limits and live-job caps is
// blasted with more submissions than it can hold while a fault point
// slows the worker down. The assertions are behavioral, not timed:
// overload must surface as 429/503 with Retry-After (never a hang or a
// 500), and the SIGTERM-style drain that follows must finish every
// accepted job.
type ServeOverloadBench struct {
	Submitted   int `json:"submitted"`
	Accepted    int `json:"accepted"`
	RateLimited int `json:"rate_limited_429"`
	Shed        int `json:"shed_503"`

	RetryAfterOnReject bool    `json:"retry_after_on_reject"`
	DrainMs            float64 `json:"drain_ms"`
	DrainClean         bool    `json:"drain_clean"`
}

// ServeBenchReport is the machine-readable service perf record emitted
// as BENCH_serve.json so end-to-end latency and overload behavior are
// tracked PR to PR alongside the solver hot path in BENCH_solver.json.
type ServeBenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Timestamp string `json:"timestamp"`
	Workers   int    `json:"workers"`

	Load     *ServeLoadBench     `json:"load"`
	Overload *ServeOverloadBench `json:"overload"`
}

// serveBenchCases flattens a serve report into the wall-time cases the
// regression gate compares. Overload numbers are behavioral (counts and
// booleans) and fault-stretched, so only the steady-state latencies
// gate.
func serveBenchCases(rep *ServeBenchReport) []benchCase {
	var out []benchCase
	if rep.Load != nil {
		out = append(out,
			benchCase{"serve/ms_per_job", rep.Load.MsPerJob},
			benchCase{"serve/p50_ms", rep.Load.P50Ms},
			benchCase{"serve/p99_ms", rep.Load.P99Ms},
		)
	}
	return out
}

// runServeBenchCompare is the BENCH_serve.json regression gate,
// sharing the tolerance/normalization engine with -solverbench-compare.
func runServeBenchCompare(oldPath, newPath string, tol float64, normalize bool) error {
	read := func(path string) (*ServeBenchReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep ServeBenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	oldRep, err := read(oldPath)
	if err != nil {
		return err
	}
	newRep, err := read(newPath)
	if err != nil {
		return err
	}
	return compareBenchCases(oldPath, serveBenchCases(oldRep), serveBenchCases(newRep), tol, normalize)
}

// serveBenchTranDeck / serveBenchMCDeck are the client workloads. Each
// client stamps its own comment line into the deck so distinct clients
// exercise distinct cache entries while a client's own jobs stay warm.
const serveBenchTranDeck = `* servebench rc client %d
V1 in 0 PULSE(0 1 5n 1n 1n 100n)
R1 in out 1k
C1 out 0 1p
.tran 0.1n 60n
.end
`

const serveBenchMCDeck = `* servebench rtd mc client %d
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.tran 0.25n 10n
.mc 24 SEED=1
.vary N1(A) DEV=5%%
.limit v(d) final 0 1.5
.print v(d)
.end
`

// runServeBench measures the batch-simulation service end to end and
// writes the report to outPath.
func runServeBench(outPath string, quick bool) error {
	workers := runtime.NumCPU()
	if workers > 4 {
		workers = 4
	}
	rep := &ServeBenchReport{
		Schema:    "nanosim/bench-serve/v1",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Workers:   workers,
	}

	load, err := serveBenchLoad(workers, quick)
	if err != nil {
		return err
	}
	rep.Load = load

	overload, err := serveBenchOverload()
	if err != nil {
		return err
	}
	rep.Overload = overload

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("servebench: %d jobs, %d clients x %d workers\n", load.Jobs, load.Clients, workers)
	fmt.Printf("  e2e latency     p50 %.2f ms  p99 %.2f ms  max %.2f ms\n", load.P50Ms, load.P99Ms, load.MaxMs)
	fmt.Printf("  throughput      %.1f jobs/s (%.2f ms/job over %.0f ms wall)\n", load.ThroughputPerSec, load.MsPerJob, load.WallMs)
	fmt.Printf("  server          queue-wait p99 %.2f ms, %d compiles, %d warm checkouts\n",
		load.QueueWaitP99Ms, load.DeckCompiles, load.WarmCheckouts)
	fmt.Printf("  overload        %d submitted: %d accepted, %d x 429, %d x 503 (Retry-After %v)\n",
		overload.Submitted, overload.Accepted, overload.RateLimited, overload.Shed, overload.RetryAfterOnReject)
	fmt.Printf("  drain           %.0f ms, clean=%v\n", overload.DrainMs, overload.DrainClean)
	fmt.Printf("servebench: wrote %s\n", outPath)
	return nil
}

// serveBenchLoad runs the steady-state scenario.
func serveBenchLoad(workers int, quick bool) (*ServeLoadBench, error) {
	clients, perClient := 8, 24
	if quick {
		clients, perClient = 4, 8
	}

	srv, err := serve.New(serve.Config{Workers: workers, QueueDepth: 1024})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	type clientOut struct {
		lat  []time.Duration
		errs int
	}
	outs := make([]clientOut, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hc := ts.Client()
			decks := []string{
				fmt.Sprintf(serveBenchTranDeck, c),
				fmt.Sprintf(serveBenchMCDeck, c),
			}
			for i := 0; i < perClient; i++ {
				d, err := serveBenchOneJob(hc, ts.URL, fmt.Sprintf("bench-%d", c), decks[i%len(decks)])
				if err != nil {
					outs[c].errs++
					continue
				}
				outs[c].lat = append(outs[c].lat, d)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var lat []time.Duration
	errs := 0
	for _, o := range outs {
		lat = append(lat, o.lat...)
		errs += o.errs
	}
	if len(lat) == 0 {
		return nil, fmt.Errorf("servebench: all %d jobs failed", clients*perClient)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}

	met := srv.Metrics()
	return &ServeLoadBench{
		Clients:          clients,
		JobsPerClient:    perClient,
		Jobs:             len(lat),
		Errors:           errs,
		WallMs:           float64(wall) / float64(time.Millisecond),
		MsPerJob:         float64(wall) / float64(time.Millisecond) / float64(len(lat)),
		P50Ms:            q(0.50),
		P99Ms:            q(0.99),
		MaxMs:            q(1.0),
		ThroughputPerSec: float64(len(lat)) / wall.Seconds(),
		QueueWaitP99Ms:   met.Admission.QueueWait.P99Ms,
		DeckCompiles:     met.DeckCache.Compiles,
		WarmCheckouts:    met.Solver.Warm,
	}, nil
}

// serveBenchOneJob submits one fresh deck and blocks on the result
// endpoint, returning the client-observed end-to-end latency.
func serveBenchOneJob(hc *http.Client, base, clientID, deck string) (time.Duration, error) {
	body, _ := json.Marshal(serve.SubmitRequest{Deck: deck, Fresh: true})
	start := time.Now()
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	var info serve.JobInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	resp, err = hc.Get(base + "/v1/jobs/" + info.ID + "/result")
	if err != nil {
		return 0, err
	}
	var res serve.Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("result: HTTP %d", resp.StatusCode)
	}
	return time.Since(start), nil
}

// serveBenchOverload runs the shed-and-drain scenario.
func serveBenchOverload() (*ServeOverloadBench, error) {
	srv, err := serve.New(serve.Config{
		Workers:       1,
		QueueDepth:    2,
		RatePerSec:    200,
		RateBurst:     8,
		MaxClientJobs: 3,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Slow the single worker down so the queue genuinely backs up.
	faultpoint.Set(faultpoint.WorkerRun, faultpoint.Fault{Delay: 20 * time.Millisecond})
	defer faultpoint.Reset()

	out := &ServeOverloadBench{RetryAfterOnReject: true}
	hc := ts.Client()
	const blast = 96
	for i := 0; i < blast; i++ {
		deck := fmt.Sprintf(serveBenchTranDeck, 1000+i)
		body, _ := json.Marshal(serve.SubmitRequest{Deck: deck, Fresh: true})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-ID", fmt.Sprintf("tenant-%d", i%4))
		resp, err := hc.Do(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		out.Submitted++
		switch resp.StatusCode {
		case http.StatusAccepted:
			out.Accepted++
		case http.StatusTooManyRequests:
			out.RateLimited++
			if resp.Header.Get("Retry-After") == "" {
				out.RetryAfterOnReject = false
			}
		case http.StatusServiceUnavailable:
			out.Shed++
			if resp.Header.Get("Retry-After") == "" {
				out.RetryAfterOnReject = false
			}
		default:
			return nil, fmt.Errorf("overload submit %d: unexpected HTTP %d", i, resp.StatusCode)
		}
	}
	if out.Accepted == 0 || out.RateLimited+out.Shed == 0 {
		return nil, fmt.Errorf("overload scenario did not overload: %d accepted, %d rejected", out.Accepted, out.RateLimited+out.Shed)
	}

	// SIGTERM-style drain: every accepted job must reach a terminal
	// state before the deadline.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	start := time.Now()
	drainErr := srv.Drain(dctx)
	out.DrainMs = float64(time.Since(start)) / float64(time.Millisecond)

	met := srv.Metrics()
	terminal := met.Jobs.Completed + met.Jobs.Failed + met.Jobs.Canceled
	out.DrainClean = drainErr == nil &&
		met.Jobs.Queued == 0 && met.Jobs.Running == 0 &&
		terminal == int64(out.Accepted)
	if !out.DrainClean {
		return nil, fmt.Errorf("drain not clean: err=%v queued=%d running=%d terminal=%d accepted=%d",
			drainErr, met.Jobs.Queued, met.Jobs.Running, terminal, out.Accepted)
	}
	return out, nil
}
