package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTol(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"10%", 0.10, false},
		{"0.1", 0.1, false},
		{" 25% ", 0.25, false},
		{"0", 0, true},
		{"-5%", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := parseTol(c.in)
		if (err != nil) != c.err || (!c.err && got != c.want) {
			t.Errorf("parseTol(%q) = %g, %v; want %g, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestCompareArgs(t *testing.T) {
	o, n, tol, norm, err := compareArgs([]string{"old.json", "new.json", "-tol", "15%", "-normalize"}, "10%", false)
	if err != nil || o != "old.json" || n != "new.json" || tol != "15%" || !norm {
		t.Errorf("positional form: %q %q %q %v %v", o, n, tol, norm, err)
	}
	_, _, tol, norm, err = compareArgs([]string{"a.json", "b.json"}, "10%", false)
	if err != nil || tol != "10%" || norm {
		t.Errorf("defaults: %q %v %v", tol, norm, err)
	}
	if _, _, _, _, err := compareArgs([]string{"only.json"}, "10%", false); err == nil {
		t.Error("single file accepted")
	}
}

// writeBench produces a minimal report with the given per-case timings.
func writeBench(t *testing.T, path string, sparseNs, varyNs, partMs float64) {
	t.Helper()
	rep := SolverBenchReport{
		Schema: "nanosim/bench-solver/v1",
		Results: []SolverBenchEntry{
			{Backend: "sparse", N: 200, NsPerStep: sparseNs},
			{Backend: "dense", N: 16, NsPerStep: 1000},
		},
		Vary:      &VarySmoke{NsPerTrial: varyNs},
		Partition: &PartitionBench{PartitionedMs: partMs},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSolverBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBench(t, oldPath, 10000, 2e6, 100)

	// Within tolerance: 5% slower everywhere passes a 10% gate.
	writeBench(t, newPath, 10500, 2.1e6, 105)
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, false); err != nil {
		t.Errorf("5%% slowdown failed a 10%% gate: %v", err)
	}
	// One case 30% slower: gate must fail and name the regression count.
	writeBench(t, newPath, 13000, 2.1e6, 105)
	err := runSolverBenchCompare(oldPath, newPath, 0.10, false)
	if err == nil || !strings.Contains(err.Error(), "slowed down") {
		t.Errorf("30%% slowdown passed the gate: %v", err)
	}
	// Speedups never fail.
	writeBench(t, newPath, 2000, 1e6, 50)
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, false); err != nil {
		t.Errorf("speedup failed the gate: %v", err)
	}
	// Disjoint reports are an error, not a silent pass.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"nanosim/bench-solver/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSolverBenchCompare(empty, newPath, 0.10, false); err == nil {
		t.Error("comparison with no common cases passed")
	}
}

func TestSolverBenchCompareWorkerGrids(t *testing.T) {
	dir := t.TempDir()
	write := func(path string, workers []int, ms []float64) {
		t.Helper()
		rep := SolverBenchReport{
			Schema:   "nanosim/bench-solver/v1",
			Results:  []SolverBenchEntry{{Backend: "sparse", N: 200, NsPerStep: 1000}},
			Parallel: &ParallelBench{Workers: workers, Ms: ms},
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write(oldPath, []int{1, 2, 4}, []float64{100, 60, 30})
	write(newPath, []int{1, 2, 4}, []float64{100, 60, 30})
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, false); err != nil {
		t.Errorf("matching worker grids failed: %v", err)
	}
	// Scaling curves recorded over different worker grids are different
	// experiments; matching keys would compare only the overlap and call
	// the rest covered, so the gate refuses outright.
	write(newPath, []int{1, 8}, []float64{100, 20})
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, false); err == nil || !strings.Contains(err.Error(), "worker grids differ") {
		t.Errorf("cross-grid comparison not refused: %v", err)
	}
}

func TestSolverBenchCompareNormalized(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBench(t, oldPath, 10000, 2e6, 100)

	// A uniform 2x hardware offset fails the raw gate but passes the
	// normalized one.
	writeBench(t, newPath, 20000, 4e6, 200)
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, false); err == nil {
		t.Error("uniform 2x slowdown passed the raw gate")
	}
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, true); err != nil {
		t.Errorf("uniform 2x offset failed the normalized gate: %v", err)
	}
	// A relative regression on top of the offset still fails: one case
	// is 2.8x while the median sits at 2x.
	writeBench(t, newPath, 28000, 4e6, 200)
	if err := runSolverBenchCompare(oldPath, newPath, 0.10, true); err == nil {
		t.Error("relative regression passed the normalized gate")
	}
	// A uniform slowdown beyond the offset cap is refused rather than
	// normalized away — that magnitude is more likely a shared-hot-path
	// regression than a hardware change.
	writeBench(t, newPath, 40000, 8e6, 400)
	err := runSolverBenchCompare(oldPath, newPath, 0.10, true)
	if err == nil || !strings.Contains(err.Error(), "normalization cap") {
		t.Errorf("4x uniform slowdown was normalized away: %v", err)
	}
}
