package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseTol reads a slowdown tolerance: "10%" or "0.1".
func parseTol(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q (want e.g. 10%% or 0.1)", s)
	}
	if pct {
		v /= 100
	}
	if v <= 0 {
		return 0, fmt.Errorf("tolerance %q must be positive", s)
	}
	return v, nil
}

// maxNormalizeOffset bounds how large a uniform old→new slowdown
// -normalize will attribute to hardware rather than to a regression of
// the shared hot path.
const maxNormalizeOffset = 2.5

// benchCase is one comparable wall-time measurement extracted from a
// BENCH_solver.json report.
type benchCase struct {
	key string
	val float64
}

// benchCases flattens a report into named wall-time cases. Only
// wall-time metrics are compared; counters (allocs, refactors) regress
// through their own asserts.
func benchCases(rep *SolverBenchReport) []benchCase {
	var out []benchCase
	for _, e := range rep.Results {
		out = append(out, benchCase{fmt.Sprintf("solver/%s/n=%d", e.Backend, e.N), e.NsPerStep})
	}
	if rep.Vary != nil {
		out = append(out, benchCase{"vary/ns_per_trial", rep.Vary.NsPerTrial})
	}
	if rep.Partition != nil {
		out = append(out, benchCase{"partition/partitioned_ms", rep.Partition.PartitionedMs})
	}
	if rep.Parallel != nil {
		for i, w := range rep.Parallel.Workers {
			if i < len(rep.Parallel.Ms) {
				out = append(out, benchCase{fmt.Sprintf("parallel/workers=%d", w), rep.Parallel.Ms[i]})
			}
		}
	}
	if rep.Hier != nil {
		out = append(out, benchCase{"hier/flatten_compile_ms", rep.Hier.FlattenMs})
		out = append(out, benchCase{"hier/hier_compile_ms", rep.Hier.HierMs})
	}
	return out
}

// readBenchReport loads a BENCH_solver.json.
func readBenchReport(path string) (*SolverBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep SolverBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runSolverBenchCompare implements the bench-regression gate:
// `nanobench -solverbench-compare old.json new.json -tol 10%` fails when
// any case recorded in both reports slowed down by more than tol.
func runSolverBenchCompare(oldPath, newPath string, tol float64, normalize bool) error {
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	// Scaling curves recorded over different worker grids are different
	// experiments; matching keys would silently compare only the overlap
	// and call the rest covered. Refuse instead of guessing.
	if o, n := oldRep.Parallel, newRep.Parallel; o != nil && n != nil && !equalInts(o.Workers, n.Workers) {
		return fmt.Errorf("bench-compare: parallel_bench worker grids differ (%v vs %v) — re-record the baseline with the same worker counts", o.Workers, n.Workers)
	}
	return compareBenchCases(oldPath, benchCases(oldRep), benchCases(newRep), tol, normalize)
}

// equalInts reports element-wise equality.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareBenchCases is the shared gate engine behind
// -solverbench-compare and -servebench-compare: it fails when any case
// recorded in both reports slowed down by more than tol.
//
// normalize divides every ratio by the median ratio across cases before
// the tolerance applies. Absolute wall-times only compare meaningfully
// on the hardware that recorded the baseline; a CI runner that is
// uniformly 2x slower than the recording machine would otherwise flag
// every case. The median is the hardware offset (a real regression
// moves a few cases, not the median), so normalized mode catches the
// same relative regressions machine-independently.
func compareBenchCases(oldPath string, old, cases []benchCase, tol float64, normalize bool) error {
	oldCases := map[string]float64{}
	for _, c := range old {
		oldCases[c.key] = c.val
	}
	newCases := append([]benchCase(nil), cases...)
	sort.Slice(newCases, func(i, j int) bool { return newCases[i].key < newCases[j].key })

	scale := 1.0
	if normalize {
		var ratios []float64
		for _, c := range newCases {
			if base, ok := oldCases[c.key]; ok && base > 0 && c.val > 0 {
				ratios = append(ratios, c.val/base)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			scale = ratios[len(ratios)/2]
			fmt.Printf("bench-compare: normalizing by median ratio %.3f (hardware offset)\n", scale)
			// Normalization is blind to a regression that slows every
			// case uniformly (it shifts the median itself). Hardware
			// offsets between runner classes are real but bounded; a
			// median beyond the cap is more likely a shared-hot-path
			// regression than a machine change, so refuse to wave it
			// through and make the operator decide.
			if scale > maxNormalizeOffset {
				return fmt.Errorf("bench-compare: median ratio %.2fx exceeds the %.1fx normalization cap — either the shared hot path regressed everywhere or the baseline was recorded on much faster hardware (re-record it on this runner class if so)", scale, maxNormalizeOffset)
			}
		}
	}

	compared, regressed := 0, 0
	for _, c := range newCases {
		base, ok := oldCases[c.key]
		if !ok || base <= 0 || c.val <= 0 {
			continue
		}
		compared++
		ratio := c.val/(base*scale) - 1
		mark := "ok"
		if ratio > tol {
			mark = "REGRESSED"
			regressed++
		}
		fmt.Printf("bench-compare %-28s %12.0f -> %12.0f  %+6.1f%%  %s\n",
			c.key, base, c.val, 100*ratio, mark)
	}
	if compared == 0 {
		return fmt.Errorf("bench-compare: no common cases with %s", oldPath)
	}
	if regressed > 0 {
		return fmt.Errorf("bench-compare: %d of %d cases slowed down more than %.0f%%", regressed, compared, 100*tol)
	}
	fmt.Printf("bench-compare: %d cases within %.0f%% of %s\n", compared, 100*tol, oldPath)
	return nil
}
