// Command nanobench regenerates the paper's tables and figures (plus the
// DESIGN.md ablations) from the experiment registry.
//
// Usage:
//
//	nanobench -list               enumerate experiments
//	nanobench -exp fig5           run one experiment
//	nanobench -all                run everything (the EXPERIMENTS.md run)
//	nanobench -all -quick         reduced workloads
//	nanobench -solverbench        measure the per-step solver hot path
//	                              and record it to BENCH_solver.json
//	nanobench -solverbench-compare old.json new.json -tol 10%
//	                              fail when any recorded case slowed
//	                              down beyond the tolerance (CI gate)
//	nanobench -servebench         load-test the batch service end to
//	                              end (steady-state latency + overload
//	                              shed + drain) into BENCH_serve.json
//	nanobench -servebench-compare old.json new.json -tol 40%
//	                              regression gate for BENCH_serve.json
//	nanobench -golden record      record reference waveforms for the
//	                              testdata decks
//	nanobench -golden check       fail on drift from the references
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"nanosim/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	one := flag.String("exp", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced workloads (CI sizes)")
	seed := flag.Uint64("seed", 0, "override the stochastic seed")
	solverBench := flag.Bool("solverbench", false, "measure the per-step solver hot path and write BENCH_solver.json")
	solverBenchOut := flag.String("solverbench-out", "BENCH_solver.json", "output path for -solverbench")
	benchCompare := flag.Bool("solverbench-compare", false, "compare two BENCH_solver.json files: nanobench -solverbench-compare old.json new.json [-tol 10%]")
	serveBench := flag.Bool("servebench", false, "load-test the batch-simulation service and write BENCH_serve.json")
	serveBenchOut := flag.String("servebench-out", "BENCH_serve.json", "output path for -servebench")
	serveCompare := flag.Bool("servebench-compare", false, "compare two BENCH_serve.json files: nanobench -servebench-compare old.json new.json [-tol 40%]")
	tol := flag.String("tol", "10%", "slowdown tolerance for -solverbench-compare (e.g. 10% or 0.1)")
	normalize := flag.Bool("normalize", false, "divide -solverbench-compare ratios by their median first (cancels a uniform hardware offset between the two machines)")
	golden := flag.String("golden", "", "golden-deck regression: 'record' or 'check'")
	goldenDecks := flag.String("golden-decks", "testdata", "deck directory for -golden")
	goldenDir := flag.String("golden-dir", "testdata/golden", "reference-waveform directory for -golden")
	goldenTol := flag.Float64("golden-tol", 1e-6, "per-wave relative tolerance for -golden check (fraction of each recorded signal's range)")
	flag.Parse()

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	switch {
	case *benchCompare, *serveCompare:
		oldPath, newPath, tolStr, norm, err := compareArgs(flag.Args(), *tol, *normalize)
		if err == nil {
			var t float64
			if t, err = parseTol(tolStr); err == nil {
				if *serveCompare {
					err = runServeBenchCompare(oldPath, newPath, t, norm)
				} else {
					err = runSolverBenchCompare(oldPath, newPath, t, norm)
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
	case *serveBench:
		if err := runServeBench(*serveBenchOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
	case *golden != "":
		if err := runGolden(*golden, *goldenDecks, *goldenDir, *goldenTol); err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
	case *solverBench:
		if err := runSolverBench(*solverBenchOut); err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
	case *list:
		entries := exp.All()
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		for _, e := range entries {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
	case *one != "":
		res, err := exp.Run(*one, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
		fmt.Print(res.Text)
		printFindings(res)
	case *all:
		failed := 0
		for _, e := range exp.All() {
			res, err := e.Run(cfg.WithDefaults())
			if err != nil {
				fmt.Fprintf(os.Stderr, "nanobench: %s: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Print(res.Text)
			printFindings(res)
			fmt.Println()
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// compareArgs reads the positional `old.json new.json [-tol V]
// [-normalize]` form of -solverbench-compare. The flag package stops
// flag parsing at the first positional argument, so trailing options
// land here instead of in the registered flags; both spellings work.
func compareArgs(args []string, tolFlag string, normFlag bool) (oldPath, newPath, tol string, normalize bool, err error) {
	tol, normalize = tolFlag, normFlag
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-tol" || a == "--tol":
			if i+1 >= len(args) {
				return "", "", "", false, fmt.Errorf("-tol needs a value")
			}
			i++
			tol = args[i]
		case strings.HasPrefix(a, "-tol=") || strings.HasPrefix(a, "--tol="):
			tol = a[strings.IndexByte(a, '=')+1:]
		case a == "-normalize" || a == "--normalize":
			normalize = true
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		return "", "", "", false, fmt.Errorf("-solverbench-compare needs exactly two reports (old.json new.json), got %d args", len(files))
	}
	return files[0], files[1], tol, normalize, nil
}

func printFindings(res *exp.Result) {
	if len(res.Findings) == 0 {
		return
	}
	keys := make([]string, 0, len(res.Findings))
	for k := range res.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("findings:")
	for _, k := range keys {
		fmt.Printf("  %-28s %.6g\n", k, res.Findings[k])
	}
}
