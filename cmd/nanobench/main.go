// Command nanobench regenerates the paper's tables and figures (plus the
// DESIGN.md ablations) from the experiment registry.
//
// Usage:
//
//	nanobench -list               enumerate experiments
//	nanobench -exp fig5           run one experiment
//	nanobench -all                run everything (the EXPERIMENTS.md run)
//	nanobench -all -quick         reduced workloads
//	nanobench -solverbench        measure the per-step solver hot path
//	                              and record it to BENCH_solver.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nanosim/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	one := flag.String("exp", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced workloads (CI sizes)")
	seed := flag.Uint64("seed", 0, "override the stochastic seed")
	solverBench := flag.Bool("solverbench", false, "measure the per-step solver hot path and write BENCH_solver.json")
	solverBenchOut := flag.String("solverbench-out", "BENCH_solver.json", "output path for -solverbench")
	flag.Parse()

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	switch {
	case *solverBench:
		if err := runSolverBench(*solverBenchOut); err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
	case *list:
		entries := exp.All()
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		for _, e := range entries {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
	case *one != "":
		res, err := exp.Run(*one, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nanobench:", err)
			os.Exit(1)
		}
		fmt.Print(res.Text)
		printFindings(res)
	case *all:
		failed := 0
		for _, e := range exp.All() {
			res, err := e.Run(cfg.WithDefaults())
			if err != nil {
				fmt.Fprintf(os.Stderr, "nanobench: %s: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Print(res.Text)
			printFindings(res)
			fmt.Println()
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printFindings(res *exp.Result) {
	if len(res.Findings) == 0 {
		return
	}
	keys := make([]string, 0, len(res.Findings))
	for k := range res.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("findings:")
	for _, k := range keys {
		fmt.Printf("  %-28s %.6g\n", k, res.Findings[k])
	}
}
