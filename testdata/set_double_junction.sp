* double tunnel junction: seeded kMC transient co-simulated with a load
Vdd vdd 0 0.3
RL vdd d 1meg
J1 d m tj
J2 m 0 tj
.model tj TJ C=1a R=1meg
.island m
.set tran 0.2n 40n SEED=7 TEMP=4.2
.print i(d) n(m)
.end
