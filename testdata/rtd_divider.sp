* RTD voltage divider (Figure 7a): step through the NDR region
V1 in 0 PULSE(0 1.5 5n 2n 2n 40n)
R1 in d 100
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.op
.dc V1 0 1.5 61 N1
.tran 0.2n 50n
.end
