* FET-RTD inverter: RTD peak-spread Monte Carlo (low-state yield)
VDD vdd 0 1.2
VIN in 0 1.2
NL vdd out rtdload
ND out 0 rtdmod
M1 out in 0 nmod
CL out 0 20f
CIN in 0 1f
.model rtdmod RTD
.model rtdload RTD AREA=1.5
.model nmod NMOS KP=5m VTO=0.5 W=1 L=1
.tran 1n 60n
.mc 200 tran SEED=42
.vary N*(A) DEV=5%
.vary M1(VTO) DEV=3%
.limit v(out) final * 0.4
.print v(out)
.end
