* FET-RTD inverter (Figure 8a): series RTD pair with NMOS pull-down
VDD vdd 0 1.2
VIN in 0 PULSE(0 1.2 100n 1n 1n 200n)
NL vdd out rtdload
ND out 0 rtdmod
M1 out in 0 nmod
CL out 0 20f
CIN in 0 1f
.model rtdmod RTD
.model rtdload RTD AREA=1.5
.model nmod NMOS KP=5m VTO=0.5 W=1 L=1
.op
.dc VIN 0 1.2 61
.tran 1n 500n
.end
