* partitioned RTD pipeline: pulsed head stage, quiescent tail stages
* off a shared rail; the .options card runs the torn-block SWEC engine
.options partition gcouple=0.05
VP p0 0 PULSE(0.1 0.9 2n 0.5n 0.5n 3n 8n)
VDD vdd 0 0.55
R0 p0 s0 300
N0 s0 0 rtdmod
C0 s0 0 10f
R1 vdd s1 320
N1 s1 0 rtdmod
C1 s1 0 10f
RC1 s0 s1 250k
R2 vdd s2 340
N2 s2 0 rtdmod
C2 s2 0 10f
RC2 s1 s2 250k
R3 vdd s3 300
N3 s3 0 rtdmod
C3 s3 0 10f
RC3 s2 s3 250k
.model rtdmod RTD
.tran 0.1n 20n
.print v(s0) v(s3)
.end
