* Noisy parasitic RC node (Figure 10): white-noise current into R||C
IN 0 x DC 50u NOISE=0.8n
R1 x 0 1k
C1 x 0 1p
.em 1n 200 SEED=7
.end
