* RC lowpass with a noisy bias: .ac transfer + output-noise spectrum
VIN in 0 DC 0 AC 1 0
R1 in out 1k
C1 out 0 1n
IB 0 out DC 10u NOISE=0.5n
.ac dec 20 1.59k 15.9meg
.print vdb(out) vp(out) onoise(out)
.end
