* SET transistor: Coulomb-diamond map (gate period e/Cg = 80.1mV)
Vg g 0 0
Vd d 0 4m
Cg m g 2a
J1 d m tj
J2 m 0 tj
.model tj TJ C=1a R=1meg
.island m
.set map Vg 0 0.25 126 Vd 1m 4m 2 TEMP=4.2
.end
