* RTD divider: .step the load resistor and the RTD area grid
V1 in 0 0.8
R1 in d 600
N1 d 0 rtdmod
CD d 0 10f
.model rtdmod RTD
.op
.step R1 200 1200 6
.step N1(AREA) 1 2 2
.print v(d)
.end
