package nanosim_test

import (
	"math"
	"os"
	"testing"

	"nanosim"
	"nanosim/internal/netparse"
)

// loadMCInverterDeck parses the shipped Monte Carlo demo deck.
func loadMCInverterDeck(t *testing.T) *netparse.Deck {
	t.Helper()
	src, err := os.ReadFile("testdata/mc_rtd_inverter.sp")
	if err != nil {
		t.Fatal(err)
	}
	deck, err := netparse.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return deck
}

// varyOptionsFromDeck translates the deck's variation cards.
func varyOptionsFromDeck(t *testing.T, deck *netparse.Deck, workers int) nanosim.VaryOptions {
	t.Helper()
	tran := deck.Analyses[0]
	opt := nanosim.VaryOptions{
		Trials:  200,
		Seed:    deck.MC.Seed,
		Workers: workers,
		Signals: deck.Prints,
		Job: nanosim.VaryJob{Analysis: "tran", Tran: nanosim.TranOptions{
			TStop: tran.TStop, HInit: tran.TStep, RecordCurrents: true}},
	}
	for _, v := range deck.Varies {
		dist, err := nanosim.ParseVaryDist(v.Dist)
		if err != nil {
			t.Fatal(err)
		}
		opt.Specs = append(opt.Specs, nanosim.VarySpec{
			Elem: v.Elem, Param: v.Param, Dist: dist, Sigma: v.Sigma, Rel: v.Rel, Lot: v.Lot})
	}
	for _, l := range deck.Limits {
		opt.Limits = append(opt.Limits, nanosim.VaryLimit{Signal: l.Signal, Stat: l.Stat, Lo: l.Lo, Hi: l.Hi})
	}
	return opt
}

// TestVaryDeckDeterministicAcrossWorkers is the repo acceptance check:
// 200 trials of the RTD-inverter Monte Carlo deck are bit-identical for
// the same seed at Workers=1 and Workers=8.
func TestVaryDeckDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("200-trial batch skipped in -short mode")
	}
	deck1 := loadMCInverterDeck(t)
	r1, err := nanosim.Vary(deck1.Circuit, varyOptionsFromDeck(t, deck1, 1))
	if err != nil {
		t.Fatal(err)
	}
	deck8 := loadMCInverterDeck(t)
	r8, err := nanosim.Vary(deck8.Circuit, varyOptionsFromDeck(t, deck8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failed != 0 || r8.Failed != 0 {
		t.Fatalf("failed trials: %d / %d (%v %v)", r1.Failed, r8.Failed, r1.TrialErrors, r8.TrialErrors)
	}
	s1, s8 := r1.Signal("v(out)"), r8.Signal("v(out)")
	if s1 == nil || s8 == nil {
		t.Fatal("v(out) not aggregated")
	}
	for i := range s1.Final {
		if s1.Final[i] != s8.Final[i] || s1.Min[i] != s8.Min[i] || s1.Max[i] != s8.Max[i] {
			t.Fatalf("trial %d differs between Workers=1 and Workers=8: %v vs %v",
				i, s1.Final[i], s8.Final[i])
		}
	}
	for i := range s1.Mean.V {
		if s1.Mean.V[i] != s8.Mean.V[i] || s1.Std.V[i] != s8.Std.V[i] ||
			s1.QLo.V[i] != s8.QLo.V[i] || s1.QHi.V[i] != s8.QHi.V[i] {
			t.Fatalf("envelope grid point %d differs between worker counts", i)
		}
	}
	if r1.Yield != r8.Yield || r1.Passed != r8.Passed {
		t.Fatalf("yield differs: %g (%d) vs %g (%d)", r1.Yield, r1.Passed, r8.Yield, r8.Passed)
	}
	// The deck's spec limit: the inverter low state must sit below 0.4 V
	// for essentially every 5% RTD spread trial.
	if r1.Yield < 0.95 {
		t.Errorf("inverter low-state yield %g, expected near 1", r1.Yield)
	}
}

// TestParamSweepDeck runs the shipped .step deck through the library API
// and sanity-checks monotonicity of the divider bias point along R1.
func TestParamSweepDeck(t *testing.T) {
	src, err := os.ReadFile("testdata/step_rtd_divider.sp")
	if err != nil {
		t.Fatal(err)
	}
	deck, err := netparse.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	opt := nanosim.ParamSweepOptions{Job: nanosim.VaryJob{Analysis: "op"}}
	for _, s := range deck.Steps {
		opt.Axes = append(opt.Axes, nanosim.ParamSweepAxis{
			Elem: s.Elem, Param: s.Param, From: s.From, To: s.To, Points: s.Points, Log: s.Log})
	}
	res, err := nanosim.ParamSweep(deck.Circuit, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs() != 12 || res.Failed != 0 {
		t.Fatalf("runs=%d failed=%d (%v)", res.Runs(), res.Failed, res.TrialErrors)
	}
	vd := res.Final["v(d)"]
	for r, v := range vd {
		if math.IsNaN(v) || v < 0 || v > 0.8 {
			t.Errorf("run %d: v(d)=%g out of physical range", r, v)
		}
	}
	// Larger area at fixed R1 sinks more current: v(d) must not rise.
	for r := 0; r+1 < res.Runs(); r += 2 {
		if vd[r+1] > vd[r]+1e-9 {
			t.Errorf("area step raised v(d): run %d %g -> %g", r, vd[r], vd[r+1])
		}
	}
}
