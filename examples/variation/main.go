// Command variation demonstrates the process-variation half of
// Nano-Sim's "statistical simulator" claim: nanodevice parameters are
// uncertain (the paper motivates with RTD peak spread and nanowire
// geometry), so a single nominal transient says little about a
// manufactured population. A Monte Carlo over device parameters turns
// one circuit into a yield number and a response envelope.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"nanosim"
)

const vdd = 1.2

// inverter builds the Figure 8(a) FET-RTD inverter with the input held
// high, so the nominal output settles at its logic-low level, 0.181 V.
func inverter() *nanosim.Circuit {
	c := nanosim.NewCircuit("FET-RTD inverter (input high)")
	c.AddVSource("VDD", "vdd", "0", nanosim.DC(vdd))
	c.AddVSource("VIN", "in", "0", nanosim.DC(vdd))
	c.AddDevice("RL", "vdd", "out", nanosim.NewRTD().WithArea(1.5))
	c.AddDevice("RD", "out", "0", nanosim.NewRTD())
	m, err := nanosim.NewMOSFET(nanosim.NMOS, 5e-3, 1, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	c.AddFET("M1", "out", "in", "0", m)
	c.AddCapacitor("CL", "out", "0", nanosim.MustParse("20f"))
	c.AddCapacitor("CIN", "in", "0", nanosim.MustParse("1f"))
	return c
}

func main() {
	// 500 trials; every RTD's peak-current scale A varies independently
	// by 8% (DEV), the NMOS threshold by 3%, and the cell passes when
	// the low state stays within spec.
	res, err := nanosim.Vary(inverter(), nanosim.VaryOptions{
		Trials: 500,
		Seed:   42,
		Specs: []nanosim.VarySpec{
			{Elem: "R*", Param: "A", Sigma: 0.08, Rel: true},
			{Elem: "M1", Param: "VTO", Sigma: 0.03, Rel: true},
		},
		Job: nanosim.VaryJob{Analysis: "tran",
			Tran: nanosim.TranOptions{TStop: 60e-9, HInit: 1e-9}},
		Signals: []string{"v(out)"},
		Limits:  []nanosim.VaryLimit{{Signal: "v(out)", Stat: "final", Lo: 0, Hi: 0.2}},
	})
	if err != nil {
		log.Fatal(err)
	}

	out := res.Signal("v(out)")
	fmt.Printf("%d trials, %d failed\n", res.Trials, res.Failed)
	fmt.Printf("nominal low state: %s\n", nanosim.FormatValue(res.Nominal.Get("v(out)").Final(), 4))
	q05, _ := out.Quantile(0.05)
	q50, _ := out.Quantile(0.5)
	q95, _ := out.Quantile(0.95)
	fmt.Printf("population:        median %s, q05 %s, q95 %s\n",
		nanosim.FormatValue(q50, 4), nanosim.FormatValue(q05, 4), nanosim.FormatValue(q95, 4))
	fmt.Printf("yield (v(out) <= 0.2 V): %.1f%% +/- %.1f%%\n\n", 100*res.Yield, 100*res.YieldSE)

	fmt.Println("settling envelope (mean and 5%/95% quantile band):")
	env := nanosim.NewWaveSet()
	env.Add(out.Mean)
	env.Add(out.QLo)
	env.Add(out.QHi)
	if err := env.Plot(os.Stdout, 72, 14); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndistribution of the settled output:")
	fmt.Print(out.FinalHist)

	// The same circuit, explored deterministically: sweep the load RTD
	// area (the MOBILE driver/load ratio) and watch the low state move.
	sweep, err := nanosim.ParamSweep(inverter(), nanosim.ParamSweepOptions{
		Axes: []nanosim.ParamSweepAxis{{Elem: "RL", Param: "AREA", From: 1.1, To: 2.0, Points: 7}},
		Job: nanosim.VaryJob{Analysis: "tran",
			Tran: nanosim.TranOptions{TStop: 60e-9, HInit: 1e-9}},
		Signals: []string{"v(out)"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n.step equivalent: low state vs load/driver area ratio")
	for r, pt := range sweep.Values {
		v := sweep.Final["v(out)"][r]
		if math.IsNaN(v) {
			continue
		}
		fmt.Printf("  AREA=%.2f  v(out)=%s\n", pt[0], nanosim.FormatValue(v, 4))
	}
}
