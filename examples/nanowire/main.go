// Command nanowire explores the carbon-nanotube / quantum-wire model:
// the conductance-quantization staircase of the paper's Figure 1(b),
// the divider sweep of Figure 7(b), and a transient showing a wire
// charging a load through successive conduction channels.
package main

import (
	"fmt"
	"log"
	"os"

	"nanosim"
)

func main() {
	wire := nanosim.NewNanowire()

	// 1. Device-level staircase: G(V) climbs in units of G0 = 2e²/h.
	fmt.Println("quantized conductance staircase (dI/dV in siemens):")
	g := newSeries("G(V)")
	for v := -2.0; v <= 2.0; v += 0.01 {
		g.MustAppend(v, wire.G(v))
	}
	plotOne(g)

	// 2. Divider sweep (Figure 7b): wire in series with a resistor.
	ckt := nanosim.NewCircuit("nanowire divider")
	ckt.AddVSource("V1", "in", "0", nanosim.DC(0))
	ckt.AddResistor("R1", "in", "w", 300)
	ckt.AddDevice("N1", "w", "0", wire)
	ckt.AddCapacitor("CW", "w", "0", nanosim.MustParse("10f"))
	sw, err := nanosim.Sweep(ckt, "V1", 0, 2.2, 111, "N1", nanosim.DCOptions{RefineIters: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwire current vs applied bias (Figure 7b):")
	if err := sw.Waves.Plot(os.Stdout, 72, 14, "i(dev)"); err != nil {
		log.Fatal(err)
	}

	// 3. Transient: ramp the source and watch conduction channels open.
	ramp, err := nanosim.NewPWLWave([]float64{0, 100e-9}, []float64{0, 2.2})
	if err != nil {
		log.Fatal(err)
	}
	src := ckt.Element("V1").(*nanosim.VSource)
	src.W = ramp
	tr, err := nanosim.Transient(ckt, nanosim.TranOptions{TStop: 100e-9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransient ramp response at the wire node:")
	if err := tr.Waves.Plot(os.Stdout, 72, 14, "v(in)", "v(w)"); err != nil {
		log.Fatal(err)
	}
	vw := tr.Waves.Get("v(w)").Final()
	fmt.Printf("final wire bias %.3f V -> conductance %s (%.1f channels of G0)\n",
		vw, nanosim.FormatValue(wire.G(vw), 3), wire.G(vw)/nanosim.MustParse("77.48u"))
}

// newSeries and plotOne adapt the wave helpers for a standalone device
// curve (outside a circuit analysis).
func newSeries(name string) *nanosim.Series {
	return nanosim.NewSeries(name, 512)
}

func plotOne(s *nanosim.Series) {
	set := nanosim.NewWaveSet()
	if err := set.Add(s); err != nil {
		log.Fatal(err)
	}
	if err := set.Plot(os.Stdout, 72, 14); err != nil {
		log.Fatal(err)
	}
}
