// Command quickstart is the five-minute tour of nanosim: build an RTD
// voltage divider, find its operating point, sweep its I-V curve through
// the negative-differential-resistance region, and run a transient —
// all with the SWEC engine, which needs no Newton iteration.
package main

import (
	"fmt"
	"log"
	"os"

	"nanosim"
)

func main() {
	// An RTD in series with a resistor: the canonical NDR test bench
	// (paper Fig 7a). The load line crosses the RTD's resonance, which
	// is exactly where SPICE-style Newton iteration gets into trouble.
	ckt := nanosim.NewCircuit("quickstart: RTD divider")
	if _, err := ckt.AddVSource("V1", "in", "0", nanosim.DC(0.8)); err != nil {
		log.Fatal(err)
	}
	ckt.AddResistor("R1", "in", "d", 600)
	ckt.AddDevice("N1", "d", "0", nanosim.NewRTD())
	ckt.AddCapacitor("CD", "d", "0", nanosim.MustParse("10f"))

	// 1. DC operating point by damped equivalent-conductance iteration.
	op, err := nanosim.OperatingPoint(ckt, nanosim.DCOptions{})
	if err != nil {
		log.Fatal(err)
	}
	vd := op.X[int(ckt.Node("d"))-1]
	fmt.Printf("operating point: v(d) = %s after %d fixed-point iterations\n",
		nanosim.FormatValue(vd, 4), op.Iterations)

	// 2. DC sweep: trace the full I-V including the NDR region.
	sw, err := nanosim.Sweep(ckt, "V1", 0, 1.5, 151, "N1", nanosim.DCOptions{RefineIters: 30})
	if err != nil {
		log.Fatal(err)
	}
	iv := sw.Waves.Get("i(dev)")
	fmt.Println("\nRTD current vs applied bias (note the peak and valley):")
	if err := sw.Waves.Plot(os.Stdout, 72, 16, "i(dev)"); err != nil {
		log.Fatal(err)
	}
	_, _, tPk, iPk := iv.MinMax()
	fmt.Printf("peak current %s at bias %s\n",
		nanosim.FormatValue(iPk, 3), nanosim.FormatValue(tPk, 3))

	// 3. Transient: step the source and watch the node settle.
	step := nanosim.Pulse{V1: 0.3, V2: 1.1, Delay: 20e-9, Rise: 1e-9, Fall: 1e-9, Width: 200e-9}
	src := ckt.Element("V1").(*nanosim.VSource)
	src.W = step
	tr, err := nanosim.Transient(ckt, nanosim.TranOptions{TStop: 150e-9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransient response to a 0.3 -> 1.1 V step (through the NDR region):")
	if err := tr.Waves.Plot(os.Stdout, 72, 16, "v(in)", "v(d)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine work: %d accepted steps, %d linear solves, 0 Newton iterations (by construction)\n",
		tr.Stats.Steps, tr.Stats.Solves)
}
