// Command rtd_inverter reproduces the paper's Figure 8 scenario: a
// FET-RTD inverter (series RTD pair with an NMOS pull-down on the
// junction) driven by a pulse, simulated by the SWEC engine and by the
// SPICE3-style Newton baseline, side by side. Watch the Newton engine's
// non-convergence counters at the NDR switching events.
package main

import (
	"fmt"
	"log"
	"os"

	"nanosim"
)

const vdd = 1.2

// inverter builds the Figure 8(a) circuit.
func inverter(vin nanosim.Waveform) *nanosim.Circuit {
	c := nanosim.NewCircuit("FET-RTD inverter")
	c.AddVSource("VDD", "vdd", "0", nanosim.DC(vdd))
	c.AddVSource("VIN", "in", "0", vin)
	// Load RTD is 1.5x the driver so the static states are unique:
	// in = 0 -> out = 1.07 V, in = 1.2 V -> out = 0.18 V.
	c.AddDevice("RL", "vdd", "out", nanosim.NewRTD().WithArea(1.5))
	c.AddDevice("RD", "out", "0", nanosim.NewRTD())
	m, err := nanosim.NewMOSFET(nanosim.NMOS, 5e-3, 1, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	c.AddFET("M1", "out", "in", "0", m)
	c.AddCapacitor("CL", "out", "0", nanosim.MustParse("20f"))
	c.AddCapacitor("CIN", "in", "0", nanosim.MustParse("1f"))
	return c
}

func main() {
	vin := nanosim.Pulse{V1: 0, V2: vdd, Delay: 100e-9, Rise: 1e-9, Fall: 1e-9, Width: 200e-9}

	// SWEC: one linear solve per time point, no NDR hazard.
	sw, err := nanosim.Transient(inverter(vin), nanosim.TranOptions{TStop: 500e-9})
	if err != nil {
		log.Fatal(err)
	}
	out := sw.Waves.Get("v(out)")
	fmt.Println("SWEC output (input pulses 0 -> 1.2 V at 100 ns, back at 300 ns):")
	if err := sw.Waves.Plot(os.Stdout, 72, 16, "v(in)", "v(out)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("levels: high %.3f V -> low %.3f V -> high %.3f V (steps=%d, solves=%d)\n\n",
		out.At(80e-9), out.At(250e-9), out.At(450e-9), sw.Stats.Steps, sw.Stats.Solves)

	// SPICE3-style Newton on a pinned 5 ns grid: at each NDR switching
	// event the iteration hits its limit and the point is accepted
	// unconverged — the Figure 8(c) failure signature.
	nr, err := nanosim.TransientNR(inverter(vin), nanosim.BaselineOptions{
		TStop: 500e-9, HInit: 5e-9, HMax: 5e-9, HMin: 5e-9, MaxNRIter: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPICE3-style NR on a pinned 5 ns grid: %d of %d points accepted UNCONVERGED, %.1f Newton iters/step\n",
		nr.Stats.NonConverged, nr.Stats.Steps,
		float64(nr.Stats.NRIters)/float64(nr.Stats.Steps))

	// ACES-style PWL agrees with SWEC but pays segment iterations.
	pw, err := nanosim.TransientPWL(inverter(vin), nanosim.BaselineOptions{TStop: 500e-9, Segments: 96})
	if err != nil {
		log.Fatal(err)
	}
	pOut := pw.Waves.Get("v(out)")
	fmt.Printf("ACES-style PWL settles to %.3f V (SWEC: %.3f V), %d segment iterations total\n",
		pOut.At(250e-9), out.At(250e-9), pw.Stats.NRIters)
}
