// Command stochastic reproduces the paper's §4 / Figure 10 workflow:
// model an uncertain nanodevice input as white noise, integrate the
// resulting stochastic differential equation with the Euler-Maruyama
// method, and predict the transient peak within a time window — the
// quantity an average-only analysis cannot provide.
package main

import (
	"fmt"
	"log"
	"os"

	"nanosim"
)

func main() {
	// The Figure 10 substrate: the parasitic RC node of a nanoscale
	// transistor (R = 1 kΩ, C = 1 pF, tau = 1 ns) fed by a 50 µA bias
	// current with white-noise uncertainty.
	ckt := nanosim.NewCircuit("noisy parasitic RC node")
	in, err := ckt.AddISource("IN", "0", "x", nanosim.DC(50e-6))
	if err != nil {
		log.Fatal(err)
	}
	in.NoiseSigma = 8e-10 // A·√s white-noise intensity
	ckt.AddResistor("R1", "x", "0", nanosim.MustParse("1k"))
	ckt.AddCapacitor("C1", "x", "0", nanosim.MustParse("1p"))

	// One Euler-Maruyama path: the transient the circuit actually takes
	// for one realization of the noise.
	one, err := nanosim.Stochastic(ckt, nanosim.NoiseOptions{TStop: 1e-9, Steps: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one Euler-Maruyama path of v(x) over 0-1 ns:")
	if err := one.Waves.Plot(os.Stdout, 72, 14, "v(x)"); err != nil {
		log.Fatal(err)
	}

	// Monte Carlo ensemble: transient statistics and peak prediction.
	mc, err := nanosim.MonteCarlo(ckt, nanosim.EnsembleOptions{
		Base:   nanosim.NoiseOptions{TStop: 1e-9, Steps: 400, Seed: 42},
		Paths:  400,
		Signal: "v(x)",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nensemble of %d paths:\n", mc.Paths)
	fmt.Printf("  mean at T:        %s (deterministic RC answer: %s)\n",
		nanosim.FormatValue(mc.Mean.Final(), 3),
		nanosim.FormatValue(0.05*(1-expNeg1), 3))
	fmt.Printf("  std at T:         %s\n", nanosim.FormatValue(mc.Std.Final(), 3))

	// Peak prediction within the window (paper §4.2: "predict the peak
	// performance within certain time window ... close analogy to stock
	// price prediction").
	q50, _ := mc.PeakQuantile(0.5)
	q90, _ := mc.PeakQuantile(0.9)
	q99, _ := mc.PeakQuantile(0.99)
	fmt.Printf("  window peak:      median %s, 90%% %s, 99%% %s\n",
		nanosim.FormatValue(q50, 3), nanosim.FormatValue(q90, 3), nanosim.FormatValue(q99, 3))
	p, se := mc.PeakExceedProb(0.06)
	fmt.Printf("  P(peak > 60 mV) = %.2f +/- %.2f\n", p, se)
	fmt.Println("\nat the paper's 1:10 display ratio the 90% window peak reads",
		nanosim.FormatValue(q90*10, 2), "— Figure 10's ~0.6 V")
}

// expNeg1 is e^-1, the RC charging fraction at t = tau.
const expNeg1 = 0.36787944117144233
