// Command dflipflop reproduces the paper's Figure 9: an RTD D-flip-flop
// built as a MOBILE (MOnostable-BIstable Logic Element). A clocked bias
// drives a series RTD pair; a weak data FET in parallel with the driver
// RTD tilts the monostable-to-bistable decision at each rising clock
// edge. The data input switches at t = 300 ns and the output follows at
// the next rising clock edge, t = 350 ns — edge-triggered sampling with
// no cross-coupled latch.
package main

import (
	"fmt"
	"log"
	"os"

	"nanosim"
)

const vdd = 1.2

// dff builds the Figure 9(a) circuit. The MOBILE output is
// return-to-zero and inverting (Q = NOT D sampled at the rising edge),
// the native polarity of a single stage.
func dff(clk, data nanosim.Waveform) *nanosim.Circuit {
	c := nanosim.NewCircuit("RTD D-flip-flop (MOBILE)")
	c.AddVSource("VCK", "ck", "0", clk)
	c.AddVSource("VD", "d", "0", data)
	c.AddDevice("RL", "ck", "q", nanosim.NewRTD().WithArea(1.1))
	c.AddDevice("RD", "q", "0", nanosim.NewRTD())
	m, err := nanosim.NewMOSFET(nanosim.NMOS, 1e-3, 1, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	c.AddFET("MD", "q", "d", "0", m)
	c.AddCapacitor("CQ", "q", "0", nanosim.MustParse("20f"))
	c.AddCapacitor("CDT", "d", "0", nanosim.MustParse("1f"))
	return c
}

func main() {
	// Clock: 100 ns period, rising edges at 50, 150, 250, 350, 450 ns.
	clk := nanosim.Clock(0, vdd, 100e-9, 2e-9)
	// Data: high until it switches low at t = 300 ns (paper Fig 9c).
	data, err := nanosim.NewPWLWave(
		[]float64{0, 299e-9, 301e-9},
		[]float64{vdd, vdd, 0})
	if err != nil {
		log.Fatal(err)
	}

	res, err := nanosim.Transient(dff(clk, data), nanosim.TranOptions{TStop: 500e-9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clock and data:")
	if err := res.Waves.Plot(os.Stdout, 72, 12, "v(ck)", "v(d)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflip-flop output Q (inverting, return-to-zero):")
	if err := res.Waves.Plot(os.Stdout, 72, 12, "v(q)"); err != nil {
		log.Fatal(err)
	}

	q := res.Waves.Get("v(q)")
	fmt.Println("\nsampled mid clock-high phase:")
	for _, ph := range []struct {
		t time64
		d int
	}{{75e-9, 1}, {175e-9, 1}, {275e-9, 1}, {375e-9, 0}, {475e-9, 0}} {
		state := "LOW"
		if q.At(float64(ph.t)) > 0.6 {
			state = "HIGH"
		}
		fmt.Printf("  t = %3.0f ns: D=%d  Q=%5.3f V (%s)\n", float64(ph.t)*1e9, ph.d, q.At(float64(ph.t)), state)
	}
	// Locate the latching transition after the data switch.
	for _, tc := range q.Crossings(0.5, +1) {
		if tc > 300e-9 {
			fmt.Printf("\ndata switched at 300 ns; Q latched the new value at %.1f ns —\n", tc*1e9)
			fmt.Println("the rising clock edge, exactly as the paper's Figure 9 reports.")
			break
		}
	}
}

// time64 keeps the phase table aligned without floating literals noise.
type time64 = float64
