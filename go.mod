module nanosim

go 1.24
